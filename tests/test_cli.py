"""CLI commands: argument plumbing and exit codes."""

import pytest

from repro.cli import CONFIG_BUILDERS, build_config, main
from repro.workloads import read_trace


class TestList:
    def test_lists_configs_and_profiles(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fgnvm-8x2" in out
        assert "mcf" in out
        assert "mpki" in out


class TestRun:
    def test_run_benchmark(self, capsys):
        code = main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fgnvm-8x2 on sphinx3" in out
        assert "ipc" in out

    def test_run_trace_file(self, tmp_path, capsys):
        trace_path = tmp_path / "t.trace"
        assert main([
            "trace-gen", "--profile", "sphinx3", "--count", "200",
            "--output", str(trace_path),
        ]) == 0
        assert main([
            "run", "--config", "baseline", "--trace", str(trace_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "baseline-nvm" in out

    def test_unknown_config_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--config", "bogus"])

    def test_build_config_covers_every_name(self):
        for name in CONFIG_BUILDERS:
            assert build_config(name).name


class TestPolicyFlag:
    def test_list_shows_policies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "palp" in out
        assert "rbla" in out
        assert "salp-8" in out

    def test_run_with_policy_renames_config(self, capsys):
        assert main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300", "--policy", "palp",
        ]) == 0
        assert "fgnvm-8x2+palp" in capsys.readouterr().out

    def test_unknown_policy_lists_roster(self):
        with pytest.raises(SystemExit, match="palp"):
            main([
                "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
                "--requests", "300", "--policy", "bogus",
            ])

    def test_incompatible_policy_rejected(self):
        # PALP needs reads-under-write; the baseline bank forbids them.
        with pytest.raises(SystemExit, match="reads proceed under"):
            main([
                "run", "--config", "baseline", "--benchmark", "sphinx3",
                "--requests", "300", "--policy", "palp",
            ])

    def test_sweep_with_policy(self, capsys):
        assert main([
            "sweep", "--path", "org.subarray_groups", "--values",
            "2", "4", "--benchmark", "sphinx3", "--requests", "300",
            "--policy", "rbla",
        ]) == 0
        assert "org.subarray_groups=2" in capsys.readouterr().out

    def test_figure_policies_command(self, capsys):
        assert main([
            "figure-policies", "--benchmarks", "mcf", "--requests",
            "400",
        ]) == 0
        out = capsys.readouterr().out
        assert "Policy zoo" in out
        assert "salp" in out
        assert "gmean" in out


class TestTables:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "Row latches" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "tWP" in capsys.readouterr().out


class TestFigures:
    def test_figure4_small(self, capsys):
        code = main([
            "figure4", "--benchmarks", "mcf", "--requests", "600",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "gmean" in out

    def test_figure5_small(self, capsys):
        code = main([
            "figure5", "--benchmarks", "mcf", "--requests", "600",
        ])
        assert code == 0
        assert "8x32-perfect" in capsys.readouterr().out


class TestTraceGen:
    def test_native_roundtrips(self, tmp_path):
        path = tmp_path / "mcf.trace"
        assert main([
            "trace-gen", "--profile", "mcf", "--count", "150",
            "--output", str(path),
        ]) == 0
        assert len(read_trace(path)) == 150

    def test_nvmain_format(self, tmp_path):
        path = tmp_path / "mcf.nvt"
        assert main([
            "trace-gen", "--profile", "mcf", "--count", "50",
            "--output", str(path), "--format", "nvmain",
        ]) == 0
        first = path.read_text().splitlines()[0].split()
        assert len(first) == 5

    def test_missing_output_rejected(self):
        with pytest.raises(SystemExit):
            main(["trace-gen", "--profile", "mcf"])


class TestCompareAndSweep:
    def test_compare_prints_table(self, capsys):
        assert main([
            "compare", "--configs", "baseline", "fgnvm-8x2",
            "--benchmark", "sphinx3", "--requests", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "speedup_vs_first" in out
        assert "fgnvm-8x2" in out

    def test_sweep_prints_points(self, capsys):
        assert main([
            "sweep", "--path", "cpu.rob_entries", "--values", "64", "128",
            "--benchmark", "sphinx3", "--requests", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "cpu.rob_entries=64" in out

    def test_sweep_parses_bool_values(self, capsys):
        assert main([
            "sweep", "--path", "controller.close_page",
            "--values", "false", "true",
            "--benchmark", "sphinx3", "--requests", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "controller.close_page=True" in out

    def test_figure3_command(self, capsys):
        assert main(["figure3"]) == 0
        assert "Partial-Activation" in capsys.readouterr().out


class TestReproduce:
    def test_reproduce_writes_every_artifact(self, tmp_path, capsys):
        code = main([
            "reproduce", "--out", str(tmp_path / "repro"),
            "--benchmarks", "sphinx3", "--requests", "600",
        ])
        assert code == 0
        produced = {p.name for p in (tmp_path / "repro").iterdir()}
        assert {
            "table1.txt", "table2.txt", "figure3.txt", "figure4.txt",
            "figure5.txt", "headline.txt", "table1.csv", "figure4.csv",
            "figure5.csv", "MANIFEST.txt",
        } <= produced
        out = capsys.readouterr().out
        assert "ok" in out


class TestEngineValidation:
    def test_negative_workers_rejected_cleanly(self, capsys):
        with pytest.raises(SystemExit, match="--workers must be >= 0"):
            main([
                "run", "--benchmark", "sphinx3", "--requests", "300",
                "--workers", "-2",
            ])

    def test_unwritable_cache_dir_rejected_cleanly(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file in the way")
        with pytest.raises(SystemExit, match="not a writable directory"):
            main([
                "run", "--benchmark", "sphinx3", "--requests", "300",
                "--cache-dir", str(blocker),
            ])

    def test_bad_retries_rejected(self):
        with pytest.raises(SystemExit, match="--retries"):
            main([
                "run", "--benchmark", "sphinx3", "--requests", "300",
                "--retries", "0",
            ])

    def test_bad_job_timeout_rejected(self):
        with pytest.raises(SystemExit, match="--job-timeout"):
            main([
                "run", "--benchmark", "sphinx3", "--requests", "300",
                "--job-timeout", "-1",
            ])

    def test_resume_without_cache_dir_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with pytest.raises(SystemExit, match="persistent cache"):
            main([
                "run", "--benchmark", "sphinx3", "--requests", "300",
                "--resume",
            ])

    def test_run_with_cache_writes_manifest_and_journal(
        self, tmp_path, capsys
    ):
        cache_dir = tmp_path / "cache"
        assert main([
            "run", "--benchmark", "sphinx3", "--requests", "300",
            "--cache-dir", str(cache_dir),
        ]) == 0
        assert (cache_dir / "run-manifest.json").exists()
        assert (cache_dir / "sweep-journal.jsonl").exists()
        err = capsys.readouterr().err
        assert "run manifest" in err

    def test_resume_run_simulates_nothing(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        args = [
            "run", "--benchmark", "sphinx3", "--requests", "300",
            "--cache-dir", str(cache_dir),
        ]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args + ["--resume"]) == 0
        captured = capsys.readouterr()
        assert captured.out == first
        assert "0 simulation(s)" in captured.err


class TestChaos:
    def test_chaos_round_trip_is_bit_identical(self, tmp_path, capsys):
        code = main([
            "chaos", "--jobs", "4", "--workers", "1",
            "--benchmark", "sphinx3", "--requests", "300",
            "--crashes", "1", "--transients", "1", "--corrupt", "1",
            "--cache-dir", str(tmp_path / "cache"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan (seed 0), 3 fault(s)" in out
        assert "bit-identical" in out
        assert (tmp_path / "cache" / "run-manifest.json").exists()

    def test_chaos_validates_fault_budget(self):
        with pytest.raises(SystemExit, match="cannot place"):
            main([
                "chaos", "--jobs", "1", "--crashes", "5",
                "--requests", "300",
            ])

    def test_chaos_rejects_zero_jobs(self):
        with pytest.raises(SystemExit, match="--jobs"):
            main(["chaos", "--jobs", "0", "--requests", "300"])


class TestInstrumentation:
    def test_emit_trace_jsonl(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300", "--emit-trace", str(path),
        ]) == 0
        from repro.obs import read_events_jsonl

        events = read_events_jsonl(path)
        assert events
        assert any(e.kind == "issue" for e in events)
        assert any(e.kind == "run_end" for e in events)

    def test_emit_trace_chrome_json(self, tmp_path, capsys):
        import json

        path = tmp_path / "trace.json"
        assert main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300", "--emit-trace", str(path),
        ]) == 0
        payload = json.loads(path.read_text())
        assert payload["traceEvents"]
        lanes = {
            e["args"]["name"] for e in payload["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(name.startswith("SAG") for name in lanes)

    def test_emit_metrics(self, tmp_path, capsys):
        import json

        path = tmp_path / "metrics.json"
        assert main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300", "--emit-metrics", str(path),
        ]) == 0
        metrics = json.loads(path.read_text())
        run = metrics["runs"]["sphinx3"]
        assert run["totals"]["reads"] > 0
        assert run["tiles"]

    def test_instrumented_summary_matches_plain_run(self, tmp_path, capsys):
        args = [
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300",
        ]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(
            args + ["--emit-trace", str(tmp_path / "t.jsonl")]
        ) == 0
        probed = capsys.readouterr().out
        assert plain == probed

    def test_inspect_subcommand(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        assert main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300", "--emit-trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-tile occupancy" in out
        assert "multi-activation" in out

    def test_inspect_with_timeline(self, tmp_path, capsys):
        trace = tmp_path / "events.jsonl"
        main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300", "--emit-trace", str(trace),
        ])
        capsys.readouterr()
        assert main(["inspect", str(trace), "--timeline", "40"]) == 0
        out = capsys.readouterr().out
        assert "cy/column" in out

    def test_inspect_rejects_garbage(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text("definitely not json\n")
        with pytest.raises(SystemExit):
            main(["inspect", str(path)])

    def test_inspect_json(self, tmp_path, capsys):
        import json

        trace = tmp_path / "events.jsonl"
        main([
            "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300", "--emit-trace", str(trace),
        ])
        capsys.readouterr()
        assert main(["inspect", str(trace), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["events"] > 0
        # Machine-readable mirror of the human report's sections.
        assert payload["tiles"]
        assert "multi_activation_cycles" in payload
        assert payload["totals"]["reads"] > 0


class TestTracing:
    RUN = [
        "run", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
        "--requests", "300",
    ]

    def test_trace_sample_prints_blame(self, capsys):
        assert main(self.RUN + ["--trace-sample", "2"]) == 0
        out = capsys.readouterr().out
        assert "latency blame" in out
        assert "service" in out
        assert "p95+ tail" in out

    def test_trace_out_writes_span_events(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        assert main(self.RUN + ["--trace-out", str(path)]) == 0
        from repro.obs import read_events_jsonl

        events = read_events_jsonl(path)
        assert any(e.kind == "span" for e in events)
        assert any(e.kind == "blame" for e in events)

    def test_traced_summary_matches_plain_run(self, capsys):
        """Tracing is pure observation end-to-end through the CLI."""
        assert main(self.RUN) == 0
        plain = capsys.readouterr().out
        assert main(self.RUN + ["--trace-sample", "1"]) == 0
        traced = capsys.readouterr().out
        assert traced.startswith(plain.rstrip("\n"))

    def test_trace_sample_rejects_non_positive(self):
        with pytest.raises(SystemExit, match="--trace-sample must be >= 1"):
            main(self.RUN + ["--trace-sample", "0"])

    def test_trace_out_rejects_missing_directory(self, tmp_path):
        with pytest.raises(SystemExit, match="directory does not exist"):
            main(self.RUN + [
                "--trace-out", str(tmp_path / "absent" / "spans.jsonl"),
            ])

    def test_inspect_blame_renders_decomposition(self, tmp_path, capsys):
        path = tmp_path / "spans.jsonl"
        assert main(self.RUN + [
            "--trace-sample", "2", "--trace-out", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(path), "--blame"]) == 0
        out = capsys.readouterr().out
        assert "latency blame" in out
        assert "service" in out

    def test_inspect_hints_at_blame_without_flag(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(self.RUN + [
            "--trace-sample", "2", "--emit-trace", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "request spans:" in out
        assert "--blame for the full decomposition" in out

    def test_inspect_blame_without_spans_explains(self, tmp_path, capsys):
        path = tmp_path / "events.jsonl"
        assert main(self.RUN + ["--emit-trace", str(path)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(path), "--blame"]) == 0
        out = capsys.readouterr().out
        assert "no request spans in this trace" in out

    def test_inspect_json_carries_blame_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "events.jsonl"
        assert main(self.RUN + [
            "--trace-sample", "2", "--emit-trace", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["inspect", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["blame"]["spans"] > 0
        assert payload["blame"]["unattributed_cycles"] == 0
        assert payload["event_kinds"]["span"] == payload["blame"]["spans"]


class TestBlameCommand:
    def test_blame_prints_decomposition(self, capsys):
        assert main([
            "blame", "--benchmarks", "mcf", "--requests", "400",
            "--sample", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Latency blame" in out
        assert "conflict-blame share" in out
        for series in ("baseline", "fgnvm", "palp", "salp"):
            assert series in out

    def test_blame_out_archives_artifacts(self, tmp_path, capsys):
        import json

        out_dir = tmp_path / "artifacts"
        assert main([
            "blame", "--benchmarks", "mcf", "--requests", "400",
            "--sample", "2", "--out", str(out_dir),
        ]) == 0
        report = json.loads((out_dir / "blame-report.json").read_text())
        assert set(report["reports"]["mcf"]) == {
            "baseline", "fgnvm", "palp", "salp",
        }
        manifest = json.loads((out_dir / "run-manifest.json").read_text())
        assert manifest["schema"] == "repro-run-manifest-v1"
        assert len(manifest["jobs"]) == 4
        assert manifest["blame"]["mcf/fgnvm"]["spans"] > 0
        assert all(job["config_digest"] for job in manifest["jobs"])
        from repro.obs import read_events_jsonl

        spans = read_events_jsonl(out_dir / "spans-mcf-fgnvm.jsonl")
        assert any(e.kind == "span" for e in spans)

    def test_blame_rejects_bad_sample(self):
        with pytest.raises(SystemExit, match="--sample must be >= 1"):
            main(["blame", "--sample", "0"])

    def test_blame_rejects_missing_out_parent(self, tmp_path):
        with pytest.raises(SystemExit, match="parent directory"):
            main([
                "blame", "--requests", "200",
                "--out", str(tmp_path / "a" / "b" / "c"),
            ])

    def test_figure_blame_command(self, capsys):
        assert main([
            "figure-blame", "--benchmarks", "mcf", "--requests", "400",
            "--sample", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "Latency blame" in out
        assert "organisations" in out


class TestProfile:
    def test_profile_prints_phase_table(self, capsys):
        assert main([
            "profile", "--config", "fgnvm-8x2", "--benchmark", "sphinx3",
            "--requests", "300",
        ]) == 0
        out = capsys.readouterr().out
        assert "controller.tick" in out
        assert "self %" in out
        assert "cycles/s" in out

    def test_profile_summary_matches_plain_run(self, capsys):
        args = ["--config", "fgnvm-8x2", "--benchmark", "sphinx3",
                "--requests", "300"]
        assert main(["run"] + args) == 0
        plain = capsys.readouterr().out
        assert main(["profile"] + args) == 0
        profiled = capsys.readouterr().out
        # Profiling is pure observation: the summary table `run` prints
        # re-appears verbatim inside the profile report.
        table = [line for line in plain.splitlines()
                 if line and not line.endswith(":")]
        assert len(table) > 5
        assert set(table) <= set(profiled.splitlines())

    def test_emit_pstats(self, tmp_path, capsys):
        import pstats

        path = tmp_path / "run.pstats"
        assert main([
            "profile", "--benchmark", "sphinx3", "--requests", "300",
            "--emit-pstats", str(path),
        ]) == 0
        stats = pstats.Stats(str(path))
        assert stats.total_calls > 0

    def test_profile_rejects_bad_requests(self):
        with pytest.raises(SystemExit, match="--requests"):
            main(["profile", "--requests", "0"])


class TestPerf:
    RECORD = [
        "perf", "record", "--configs", "fgnvm-8x2", "--benchmarks",
        "sphinx3", "--requests", "300", "--repeats", "2",
    ]

    def test_record_then_self_compare_passes(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_PERF.json"
        assert main(self.RECORD + ["--out", str(ledger)]) == 0
        assert ledger.exists()
        assert main([
            "perf", "compare", str(ledger), str(ledger),
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_compare_flags_injected_regression(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "old.json"
        assert main(self.RECORD + ["--out", str(baseline)]) == 0
        # Inject a synthetic 4x slowdown into a copy of the ledger.
        data = json.loads(baseline.read_text())
        for entry in data["entries"]:
            entry["samples_wall_s"] = [
                s * 4 for s in entry["samples_wall_s"]
            ]
        slowed = tmp_path / "new.json"
        slowed.write_text(json.dumps(data))
        assert main(["perf", "compare", str(baseline), str(slowed)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out
        assert "regression" in out

    def test_record_with_phases_embeds_breakdown(self, tmp_path):
        import json

        ledger = tmp_path / "l.json"
        assert main(self.RECORD + ["--phases", "--out", str(ledger)]) == 0
        data = json.loads(ledger.read_text())
        assert data["entries"][0]["phases"]
        assert "controller.tick" in data["entries"][0]["phases"]

    def test_compare_missing_baseline_passes_with_notice(
        self, tmp_path, capsys
    ):
        ledger = tmp_path / "new.json"
        assert main(self.RECORD + ["--out", str(ledger)]) == 0
        assert main([
            "perf", "compare", str(tmp_path / "absent.json"), str(ledger),
        ]) == 0
        assert "no baseline ledger" in capsys.readouterr().out

    def test_compare_rejects_malformed_new_ledger(self, tmp_path):
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text('{"schema": "repro-bench-perf-v1", "entries": []}')
        new.write_text("{broken")
        with pytest.raises(SystemExit):
            main(["perf", "compare", str(old), str(new)])

    def test_record_rejects_bad_repeats(self):
        with pytest.raises(SystemExit, match="--repeats"):
            main(["perf", "record", "--repeats", "0"])


class TestTelemetryCli:
    RUN = [
        "compare", "--configs", "baseline", "fgnvm-8x2",
        "--benchmark", "sphinx3", "--requests", "300",
        "--epoch-cycles", "500", "--workers", "2",
    ]

    def sweep(self, tmp_path, capsys, extra=()):
        cache = tmp_path / "cache"
        code = main(self.RUN + ["--cache-dir", str(cache),
                                "--telemetry"] + list(extra))
        assert code == 0
        err = capsys.readouterr().err
        return cache, err

    def test_run_with_telemetry_writes_spool(self, tmp_path, capsys):
        cache, err = self.sweep(tmp_path, capsys)
        spool = cache / "telemetry.jsonl"
        assert spool.exists()
        assert "telemetry:" in err
        assert "0 dropped" in err
        # Every spool line is a schema-valid frame.
        import json

        from repro.obs.stream import validate_frame

        lines = spool.read_text().splitlines()
        assert lines
        for line in lines:
            assert validate_frame(json.loads(line)) == []

    def test_watch_once_json_snapshot(self, tmp_path, capsys):
        import json

        from repro.obs.hub import SNAPSHOT_SCHEMA

        cache, _ = self.sweep(tmp_path, capsys)
        assert main(["watch", str(cache), "--once", "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert snap["dropped_frames"] == 0
        assert len(snap["jobs"]) >= 2
        assert all(j["state"] == "done" for j in snap["jobs"])

    def test_watch_once_dashboard(self, tmp_path, capsys):
        cache, _ = self.sweep(tmp_path, capsys)
        assert main(["watch", str(cache / "telemetry.jsonl"),
                     "--once"]) == 0
        out = capsys.readouterr().out
        assert "jobs" in out
        assert "dropped frames 0" in out

    def test_watch_replay_missing_spool_fails(self, tmp_path):
        with pytest.raises(SystemExit, match="telemetry"):
            main(["watch", str(tmp_path / "absent.jsonl"), "--once"])

    def test_inspect_engine_report(self, tmp_path, capsys):
        cache, _ = self.sweep(tmp_path, capsys)
        assert main(["inspect", "--engine", str(cache)]) == 0
        out = capsys.readouterr().out
        assert "fleet:" in out
        assert "telemetry:" in out

    def test_inspect_engine_json(self, tmp_path, capsys):
        import json

        cache, _ = self.sweep(tmp_path, capsys)
        assert main(["inspect", "--engine", str(cache), "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["telemetry"]["dropped_frames"] == 0
        assert summary["telemetry"]["jobs_streamed"] >= 2

    def test_inspect_autodetects_spool(self, tmp_path, capsys):
        cache, _ = self.sweep(tmp_path, capsys)
        assert main(["inspect", str(cache / "telemetry.jsonl")]) == 0
        out = capsys.readouterr().out
        assert "dropped frames" in out

    def test_prom_and_otlp_exports(self, tmp_path, capsys):
        import json

        prom = tmp_path / "metrics.prom"
        otlp = tmp_path / "metrics.otlp.json"
        self.sweep(tmp_path, capsys,
                   extra=["--prom", str(prom), "--otlp", str(otlp)])
        text = prom.read_text()
        assert "# TYPE repro_jobs_total gauge" in text
        assert "repro_dropped_frames_total 0" in text
        data = json.loads(otlp.read_text())
        assert "resourceMetrics" in data

    def test_prom_without_telemetry_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="--telemetry"):
            main(self.RUN + ["--prom", str(tmp_path / "m.prom")])

    def test_drift_envelope_flags_findings(self, tmp_path, capsys):
        import json

        from repro.obs.drift import DriftEnvelope, write_envelopes

        envelope_path = tmp_path / "envelopes.json"
        write_envelopes(envelope_path, [
            DriftEnvelope(config="baseline-nvm", benchmark="sphinx3",
                          ipc_min=50.0, ipc_max=60.0, rel_tol=0.0),
            DriftEnvelope(config="fgnvm-8x2", benchmark="sphinx3",
                          ipc_min=50.0, ipc_max=60.0, rel_tol=0.0),
        ])
        cache, err = self.sweep(
            tmp_path, capsys,
            extra=["--drift-envelope", str(envelope_path)],
        )
        assert "DRIFT ipc_low" in err
        manifest = json.loads((cache / "run-manifest.json").read_text())
        assert manifest["telemetry"]["drift"]["by_kind"]["ipc_low"] >= 1

    def test_progress_renders_from_hub(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(self.RUN + ["--cache-dir", str(cache), "--telemetry",
                                "--progress"]) == 0
        err = capsys.readouterr().err
        # The hub-sourced progress line uses the fleet's "jobs" label.
        assert "] jobs" in err
