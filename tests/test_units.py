"""Unit-conversion helpers."""

import pytest

from repro.errors import ConfigError
from repro import units


class TestNsToCycles:
    def test_table2_conversions_at_default_tck(self):
        assert units.ns_to_cycles(25.0) == 10
        assert units.ns_to_cycles(95.0) == 38
        assert units.ns_to_cycles(150.0) == 60
        assert units.ns_to_cycles(7.5) == 3
        assert units.ns_to_cycles(0.0) == 0

    def test_rounds_up_partial_cycles(self):
        assert units.ns_to_cycles(2.6, tck_ns=2.5) == 2
        assert units.ns_to_cycles(5.1, tck_ns=2.5) == 3

    def test_float_fuzz_does_not_inflate(self):
        # 7.5 / 2.5 is 3.0000000000000004 in floating point.
        assert units.ns_to_cycles(7.5, tck_ns=2.5) == 3

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            units.ns_to_cycles(-1.0)

    def test_bad_clock_rejected(self):
        with pytest.raises(ConfigError):
            units.ns_to_cycles(10.0, tck_ns=0.0)


class TestCyclesToTime:
    def test_roundtrip(self):
        assert units.cycles_to_ns(38) == pytest.approx(95.0)
        assert units.cycles_to_us(400) == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            units.cycles_to_ns(-5)


class TestEnergyAreaConversions:
    def test_pj_conversions(self):
        assert units.pj_to_nj(1500.0) == pytest.approx(1.5)
        assert units.pj_to_uj(2_000_000.0) == pytest.approx(2.0)

    def test_area_conversions_roundtrip(self):
        assert units.um2_to_mm2(units.mm2_to_um2(0.11)) == pytest.approx(0.11)
        assert units.mm2_to_um2(0.1) == pytest.approx(100_000.0)


class TestPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 1 << 30])
    def test_powers_accepted(self, value):
        assert units.is_power_of_two(value)
        assert 1 << units.log2_exact(value) == value

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 1000])
    def test_non_powers_rejected(self, value):
        assert not units.is_power_of_two(value)
        with pytest.raises(ConfigError):
            units.log2_exact(value)
