"""Preset configurations mirror the paper's evaluation setup."""

import pytest

from repro.config import (
    BankArchitecture,
    SchedulerKind,
    all_presets,
    baseline_nvm,
    fgnvm,
    fgnvm_multi_issue,
    figure4_configs,
    figure5_configs,
    many_banks,
    validate_config,
)


class TestTable2Values:
    def test_timing_matches_table2(self):
        cfg = fgnvm()
        assert cfg.timing.trcd_ns == 25.0
        assert cfg.timing.tcas_ns == 95.0
        assert cfg.timing.twp_ns == 150.0
        assert cfg.timing.tcwd_ns == 7.5
        assert cfg.timing.twr_ns == 7.5
        assert cfg.timing.tccd_cycles == 4
        assert cfg.timing.tburst_cycles == 4

    def test_controller_matches_table2(self):
        cfg = fgnvm()
        assert cfg.controller.scheduler is SchedulerKind.FRFCFS
        assert cfg.controller.read_queue_entries == 32
        assert cfg.controller.write_queue_entries == 64

    def test_default_subdivision_is_4x4(self):
        cfg = fgnvm()
        assert cfg.org.subarray_groups == 4
        assert cfg.org.column_divisions == 4


class TestArchitecturePresets:
    def test_baseline_is_unsubdivided(self):
        cfg = baseline_nvm()
        assert cfg.org.architecture is BankArchitecture.BASELINE
        assert cfg.org.subarray_groups == 1
        assert cfg.org.column_divisions == 1
        assert not cfg.controller.eager_writes

    def test_fgnvm_uses_augmented_frfcfs(self):
        cfg = fgnvm(8, 2)
        assert cfg.controller.eager_writes
        assert cfg.controller.max_writes_per_bank == 1

    def test_many_banks_unit_count_is_128(self):
        cfg = many_banks(8, 2)
        assert cfg.org.architecture is BankArchitecture.MANY_BANKS
        units = (
            cfg.org.banks_per_rank
            * cfg.org.subarray_groups
            * cfg.org.column_divisions
        )
        assert units == 128
        assert "128" in cfg.name

    def test_multi_issue_widens_buses(self):
        cfg = fgnvm_multi_issue(8, 2)
        assert cfg.controller.scheduler is SchedulerKind.FRFCFS_MULTI_ISSUE
        assert cfg.controller.issue_width > 1
        assert cfg.controller.data_bus_width > 1
        assert cfg.controller.eager_writes


class TestFigureConfigSets:
    def test_figure4_has_four_systems(self):
        configs = figure4_configs()
        assert set(configs) == {
            "baseline", "fgnvm", "128-banks", "fgnvm-multi-issue"
        }
        assert configs["fgnvm"].org.subarray_groups == 8
        assert configs["fgnvm"].org.column_divisions == 2

    def test_figure5_sweeps_column_divisions(self):
        configs = figure5_configs()
        assert configs["8x2"].org.column_divisions == 2
        assert configs["8x8"].org.column_divisions == 8
        assert configs["8x32"].org.column_divisions == 32
        for label in ("8x2", "8x8", "8x32"):
            assert configs[label].org.subarray_groups == 8

    def test_8x32_lines_span_two_cds(self):
        cfg = figure5_configs()["8x32"]
        assert cfg.org.cd_span == 2
        assert cfg.org.bytes_per_cd == 32

    def test_names_are_unique(self):
        names = [cfg.name for cfg in all_presets()]
        assert len(names) == len(set(names))


@pytest.mark.parametrize("cfg", all_presets(), ids=lambda c: c.name)
def test_every_preset_validates(cfg):
    assert validate_config(cfg) is cfg
