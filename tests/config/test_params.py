"""Configuration dataclasses: conversions, derived geometry, copying."""

import pytest

from repro.config.params import (
    BankArchitecture,
    OrgParams,
    SystemConfig,
    TimingParams,
    override_nested,
)
from repro.errors import ConfigError


class TestTimingParams:
    def test_table2_defaults_convert_to_expected_cycles(self):
        cyc = TimingParams().cycles()
        assert cyc.trcd == 10
        assert cyc.tcas == 38
        assert cyc.tras == 0
        assert cyc.trp == 0
        assert cyc.tccd == 4
        assert cyc.tburst == 4
        assert cyc.tcwd == 3
        assert cyc.twp == 60
        assert cyc.twr == 3

    def test_hit_latency_cheaper_than_sense(self):
        cyc = TimingParams().cycles()
        assert cyc.tcas_hit < cyc.tcas

    def test_derived_latencies(self):
        cyc = TimingParams().cycles()
        assert cyc.read_miss_latency == 10 + 38 + 4
        assert cyc.write_occupancy == 3 + 60 + 3

    def test_alternate_clock(self):
        cyc = TimingParams(tck_ns=1.25).cycles()
        assert cyc.trcd == 20
        assert cyc.tcas == 76


class TestOrgParams:
    def test_derived_geometry(self):
        org = OrgParams()
        assert org.columns_per_row == 16
        assert org.rows_per_sag == 32768 // 4
        assert org.columns_per_cd == 4
        assert org.total_banks == 8
        assert org.cd_span == 1
        assert org.bytes_per_cd == 256

    def test_fine_grid_spans_cache_lines(self):
        org = OrgParams(column_divisions=32)
        assert org.cd_span == 2
        assert org.columns_per_cd == 1
        assert org.bytes_per_cd == 32

    def test_capacity(self):
        org = OrgParams(rows_per_bank=1024)
        assert org.capacity_bytes == 8 * 1024 * 1024


class TestSystemConfigCopy:
    def test_copy_is_deep_for_nested_sections(self):
        cfg = SystemConfig()
        dup = cfg.copy()
        dup.org.column_divisions = 32
        dup.timing.trcd_ns = 99.0
        assert cfg.org.column_divisions == 4
        assert cfg.timing.trcd_ns == 25.0

    def test_copy_rejects_unknown_field(self):
        with pytest.raises(ConfigError):
            SystemConfig().copy(bogus=1)

    def test_override_nested(self):
        cfg = SystemConfig()
        dup = override_nested(cfg, "controller.issue_width", 4)
        assert dup.controller.issue_width == 4
        assert cfg.controller.issue_width == 1

    def test_override_nested_rejects_bad_path(self):
        with pytest.raises(ConfigError):
            override_nested(SystemConfig(), "org.nonsense", 1)
        with pytest.raises(ConfigError):
            override_nested(SystemConfig(), "nonsense.field", 1)

    def test_describe_mentions_key_facts(self):
        info = SystemConfig().describe()
        assert info["architecture"] == BankArchitecture.FGNVM.value
        assert "4 SAGs x 4 CDs" in info["subdivision"]
        assert "tCAS=38cy" in info["timings"]
