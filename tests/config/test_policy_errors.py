"""Regression tests: unknown policy names must fail loudly.

The original ``make_scheduler`` checked ``REPRO_SCHEDULER`` only on the
FRFCFS branch — the FCFS branch returned before the env check, so a
typo'd override was silently ignored.  Every kind now routes through
the registry, which validates the env var and reports the registered
names.
"""

import pytest

from repro.config import baseline_nvm, fgnvm
from repro.config.params import SchedulerKind
from repro.config.validate import validate_config, validation_errors
from repro.errors import ConfigError, SchedulerError
from repro.memsys.policies import policy_names
from repro.memsys.scheduler import (
    SCHEDULER_ENV,
    FcfsScheduler,
    FrfcfsScheduler,
    IncrementalFrfcfs,
    make_scheduler,
)


class TestEnvOverrideErrors:
    @pytest.mark.parametrize(
        "kind", [SchedulerKind.FCFS, SchedulerKind.FRFCFS,
                 SchedulerKind.FRFCFS_MULTI_ISSUE]
    )
    def test_unknown_env_value_raises_for_every_kind(self, kind,
                                                     monkeypatch):
        """Previously the FCFS branch never looked at the env var."""
        monkeypatch.setenv(SCHEDULER_ENV, "bogus-policy")
        with pytest.raises(SchedulerError) as err:
            make_scheduler(kind)
        message = str(err.value)
        assert "bogus-policy" in message
        for name in policy_names():
            assert name in message

    def test_empty_env_value_is_default(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "")
        sched = make_scheduler(SchedulerKind.FRFCFS)
        assert isinstance(sched, IncrementalFrfcfs)

    @pytest.mark.parametrize("alias", ["reference", "oracle"])
    def test_oracle_aliases_force_protocol_path(self, alias, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, alias)
        sched = make_scheduler(SchedulerKind.FRFCFS)
        assert type(sched) is FrfcfsScheduler

    def test_legacy_frfcfs_alias_still_forces_oracle(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "frfcfs")
        sched = make_scheduler(SchedulerKind.FRFCFS)
        assert type(sched) is FrfcfsScheduler

    def test_legacy_incremental_alias(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "incremental")
        sched = make_scheduler(SchedulerKind.FRFCFS)
        assert isinstance(sched, IncrementalFrfcfs)

    def test_env_can_force_named_policy(self, monkeypatch):
        monkeypatch.setenv(SCHEDULER_ENV, "palp")
        sched = make_scheduler(SchedulerKind.FRFCFS)
        assert sched.name == "palp"

    def test_fcfs_kind_unaffected_without_env(self, monkeypatch):
        monkeypatch.delenv(SCHEDULER_ENV, raising=False)
        assert isinstance(make_scheduler(SchedulerKind.FCFS),
                          FcfsScheduler)


class TestConfigPolicyErrors:
    def test_unknown_policy_name_fails_validation(self):
        cfg = fgnvm(4, 4)
        cfg.controller.policy = "not-a-policy"
        problems = validation_errors(cfg)
        assert any("not-a-policy" in p for p in problems)
        joined = " ".join(problems)
        for name in policy_names():
            assert name in joined
        with pytest.raises(ConfigError):
            validate_config(cfg)

    def test_capability_mismatch_fails_validation(self):
        cfg = baseline_nvm()
        cfg.controller.policy = "palp"
        with pytest.raises(ConfigError):
            validate_config(cfg)

    def test_registered_policy_passes_validation(self):
        cfg = fgnvm(4, 4)
        cfg.controller.policy = "rbla"
        validate_config(cfg)


class TestCliPolicyErrors:
    def test_cli_unknown_policy_exits_with_names(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main(["run", "--config", "fgnvm-8x2", "--policy", "bogus",
                  "--requests", "10"])
        message = str(exc.value)
        assert "bogus" in message
        assert "palp" in message
