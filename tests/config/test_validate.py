"""Every validation rule trips on the malformed config it targets."""

import pytest

from repro.config import SystemConfig, validate_config, validation_errors
from repro.config.params import BankArchitecture, SchedulerKind
from repro.errors import ConfigError


def broken(mutate):
    cfg = SystemConfig()
    mutate(cfg)
    return cfg


class TestGeometryRules:
    def test_valid_default_has_no_errors(self):
        assert validation_errors(SystemConfig()) == []

    @pytest.mark.parametrize("field,value", [
        ("channels", 3),
        ("ranks_per_channel", 0),
        ("banks_per_rank", 12),
        ("rows_per_bank", 1000),
        ("row_size_bytes", 1000),
        ("cacheline_bytes", 48),
        ("subarray_groups", 3),
        ("column_divisions", 5),
    ])
    def test_power_of_two_fields(self, field, value):
        cfg = broken(lambda c: setattr(c.org, field, value))
        assert any(field in e for e in validation_errors(cfg))

    def test_cds_must_divide_row(self):
        def mutate(c):
            c.org.row_size_bytes = 1024
            c.org.column_divisions = 2048
        errors = validation_errors(broken(mutate))
        assert any("column_divisions" in e for e in errors)

    def test_many_banks_rejects_sub_line_units(self):
        def mutate(c):
            c.org.architecture = BankArchitecture.MANY_BANKS
            c.org.column_divisions = 32  # 16 lines per row -> 0.5 lines/unit
        errors = validation_errors(broken(mutate))
        assert any("MANY_BANKS" in e for e in errors)

    def test_too_many_sags(self):
        def mutate(c):
            c.org.rows_per_bank = 4
            c.org.subarray_groups = 8
        errors = validation_errors(broken(mutate))
        assert any("subarray_groups" in e for e in errors)


class TestControllerRules:
    def test_watermark_ordering(self):
        def mutate(c):
            c.controller.write_low_watermark = 50
            c.controller.write_high_watermark = 40
        errors = validation_errors(broken(mutate))
        assert any("watermark" in e for e in errors)

    def test_watermark_above_capacity(self):
        def mutate(c):
            c.controller.write_high_watermark = 100
        errors = validation_errors(broken(mutate))
        assert any("watermark" in e for e in errors)

    def test_multi_issue_widths_need_multi_issue_scheduler(self):
        def mutate(c):
            c.controller.issue_width = 4
        errors = validation_errors(broken(mutate))
        assert any("multi-issue" in e for e in errors)

    def test_multi_issue_scheduler_accepts_widths(self):
        def mutate(c):
            c.controller.scheduler = SchedulerKind.FRFCFS_MULTI_ISSUE
            c.controller.issue_width = 4
            c.controller.data_bus_width = 4
        assert validation_errors(broken(mutate)) == []

    @pytest.mark.parametrize("field", [
        "read_queue_entries", "write_queue_entries", "issue_width",
    ])
    def test_positive_controller_fields(self, field):
        cfg = broken(lambda c: setattr(c.controller, field, 0))
        assert validation_errors(cfg)


class TestCpuAndSimRules:
    @pytest.mark.parametrize("field", [
        "rob_entries", "retire_width", "mshr_entries",
    ])
    def test_positive_cpu_fields(self, field):
        cfg = broken(lambda c: setattr(c.cpu, field, 0))
        assert any("cpu" in e for e in validation_errors(cfg))

    def test_sim_limits_positive(self):
        cfg = broken(lambda c: setattr(c.sim, "max_cycles", 0))
        assert any("max_cycles" in e for e in validation_errors(cfg))

    def test_bad_clock(self):
        cfg = broken(lambda c: setattr(c.timing, "tck_ns", -1.0))
        assert validation_errors(cfg)


def test_validate_config_raises_with_all_problems():
    cfg = SystemConfig()
    cfg.org.channels = 3
    cfg.cpu.rob_entries = 0
    with pytest.raises(ConfigError) as excinfo:
        validate_config(cfg)
    message = str(excinfo.value)
    assert "channels" in message
    assert "rob_entries" in message
