"""Property tests: address mapping is a bijection with sane coordinates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fgnvm, many_banks
from repro.memsys.address import AddressMapper


def mapper_for(sags, cds, many=False):
    cfg = many_banks(sags, cds) if many else fgnvm(sags, cds)
    cfg.org.rows_per_bank = 1024
    return AddressMapper(cfg.org), cfg.org


GRIDS = [(4, 4), (8, 2), (8, 8), (2, 8)]


@pytest.mark.parametrize("sags,cds", GRIDS)
@given(address=st.integers(min_value=0, max_value=(1 << 40) - 1))
@settings(max_examples=50, deadline=None)
def test_decode_fields_in_range(sags, cds, address):
    mapper, org = mapper_for(sags, cds)
    dec = mapper.decode(address)
    assert 0 <= dec.channel < org.channels
    assert 0 <= dec.rank < org.ranks_per_channel
    assert 0 <= dec.bank < org.banks_per_rank
    assert 0 <= dec.row < org.rows_per_bank
    assert 0 <= dec.col < org.columns_per_row
    assert 0 <= dec.sag < org.subarray_groups
    assert 0 <= dec.cd < org.column_divisions
    assert 0 <= dec.flat_bank < mapper.independent_banks()


@pytest.mark.parametrize("sags,cds", GRIDS)
@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_encode_decode_roundtrip(sags, cds, data):
    mapper, org = mapper_for(sags, cds)
    bank = data.draw(st.integers(0, org.banks_per_rank - 1))
    row = data.draw(st.integers(0, org.rows_per_bank - 1))
    col = data.draw(st.integers(0, org.columns_per_row - 1))
    dec = mapper.decode(mapper.encode(bank=bank, row=row, col=col))
    assert (dec.bank, dec.row, dec.col) == (bank, row, col)


@given(address=st.integers(min_value=0, max_value=(1 << 40) - 1))
@settings(max_examples=50, deadline=None)
def test_decode_is_wrap_stable(address):
    mapper, _ = mapper_for(4, 4)
    a = mapper.decode(address)
    b = mapper.decode(address + mapper.capacity_bytes)
    assert a == b


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_many_banks_folding_is_injective(data):
    mapper, org = mapper_for(4, 4, many=True)
    coords = data.draw(st.lists(
        st.tuples(
            st.integers(0, org.banks_per_rank - 1),
            st.integers(0, org.subarray_groups - 1),
            st.integers(0, org.column_divisions - 1),
        ),
        min_size=2, max_size=8, unique=True,
    ))
    flats = set()
    for bank, sag, cd in coords:
        dec = mapper.decode(mapper.encode(
            bank=bank,
            row=sag * org.rows_per_sag,
            col=cd * org.columns_per_cd,
        ))
        flats.add(dec.flat_bank)
    assert len(flats) == len(coords)


@given(col=st.integers(0, 15))
@settings(max_examples=20, deadline=None)
def test_cd_span_bases_are_aligned(col):
    cfg = fgnvm(8, 32)
    mapper = AddressMapper(cfg.org)
    dec = mapper.decode(mapper.encode(col=col))
    span = cfg.org.cd_span
    assert dec.cd % span == 0
    assert dec.cd // span == col
