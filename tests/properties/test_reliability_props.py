"""Property tests: the device fault model is deterministic and blamed.

Two contracts from :mod:`repro.memsys.reliability`:

* **Determinism without RNG state** — a seeded reliability config
  produces the identical result on every run and on every engine path
  (serial, pooled, disk-cached), because each verify draw is a pure
  hash of (seed, tile, wear, attempt).
* **Blame stays gap-free** — with retries and maintenance in the
  pipeline, every sampled request's blame segments still tile
  [arrival, completion) exactly, across every registered scheduling
  policy, with the new ``write_retry``/``maintenance`` causes in the
  vocabulary.
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fgnvm, with_reliability
from repro.memsys.policies import apply_policy, policy_names
from repro.obs.trace import (
    BLAME_CAUSES,
    BLAME_SERVICE,
    BLAME_WRITE_RETRY,
    RequestTracer,
)
from repro.sim.experiment import run_benchmark
from repro.sim.parallel import ExperimentJob, ParallelExperimentEngine

POLICY_NAMES = policy_names()


def reliability_config(prob, seed, rotate=None, endurance=None,
                       policy=None):
    base = fgnvm(4, 2)
    base.org.rows_per_bank = 256
    if policy is not None:
        base = apply_policy(base, policy)
    return with_reliability(
        base, write_fail_prob=prob, max_write_retries=4,
        endurance_writes=endurance, wear_rotate_every=rotate, seed=seed,
    )


class TestSeededDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(
        prob=st.floats(min_value=0.0, max_value=0.5),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        rotate=st.one_of(st.none(), st.integers(min_value=8, max_value=64)),
        endurance=st.one_of(st.none(),
                            st.integers(min_value=20, max_value=200)),
        benchmark=st.sampled_from(["mcf", "milc"]),
        requests=st.integers(min_value=100, max_value=500),
    )
    def test_same_seed_same_everything(self, prob, seed, rotate,
                                       endurance, benchmark, requests):
        config = reliability_config(prob, seed, rotate, endurance)
        first = run_benchmark(config, benchmark, requests).summary()
        second = run_benchmark(config, benchmark, requests).summary()
        assert first == second

    def test_serial_pooled_and_cached_agree(self):
        config = reliability_config(0.2, seed=11, rotate=32, endurance=80)
        jobs = [ExperimentJob(config, "mcf", 500, seed=s) for s in (0, 1)]
        serial = [
            r.summary()
            for r in ParallelExperimentEngine(workers=1).run_jobs(jobs)
        ]
        pooled = [
            r.summary()
            for r in ParallelExperimentEngine(workers=2).run_jobs(jobs)
        ]
        assert pooled == serial
        with tempfile.TemporaryDirectory() as cache_dir:
            warm = ParallelExperimentEngine(workers=1, cache_dir=cache_dir)
            assert [r.summary() for r in warm.run_jobs(jobs)] == serial
            replay = ParallelExperimentEngine(workers=1,
                                              cache_dir=cache_dir)
            assert [r.summary() for r in replay.run_jobs(jobs)] == serial
            assert replay.stats.disk_hits == len(jobs)
            assert replay.stats.executed == 0


class TestBlameStaysGapFree:
    @settings(max_examples=10, deadline=None)
    @given(
        policy=st.sampled_from(POLICY_NAMES),
        prob=st.floats(min_value=0.05, max_value=0.6),
        seed=st.integers(min_value=0, max_value=2**16),
        requests=st.integers(min_value=80, max_value=300),
    )
    def test_segments_tile_latency_under_faults(self, policy, prob, seed,
                                                requests):
        config = reliability_config(prob, seed, rotate=16, endurance=None,
                                    policy=policy)
        tracer = RequestTracer(sample_every=1, seed=seed)
        run_benchmark(config, "mcf", requests, tracer=tracer)
        assert not tracer.active
        assert tracer.finished
        for span in tracer.finished:
            assert span.check() == [], span.check()
            assert sum(
                end - start for start, end, _ in span.segments
            ) == span.latency
            cursor = span.arrival
            for start, end, cause in span.segments:
                assert start == cursor and end > start
                assert cause in BLAME_CAUSES
                cursor = end
            assert cursor == span.completion
            assert span.segments[-1][2] == BLAME_SERVICE

    def test_write_retry_blame_actually_appears(self):
        """At a high failure rate the new cause must show up in spans —
        the vocabulary is load-bearing, not decorative."""
        config = reliability_config(0.9, seed=3)
        tracer = RequestTracer(sample_every=1, seed=0)
        result = run_benchmark(config, "mcf", 600, tracer=tracer)
        assert result.stats.write_retries > 0
        causes = {
            cause
            for span in tracer.finished
            for _, _, cause in span.segments
        }
        assert BLAME_WRITE_RETRY in causes

    def test_maintenance_competes_and_is_attributed(self):
        """Rotation migrations occupy tiles: the stats must count them
        and the run must still complete with blame intact."""
        config = reliability_config(0.0, seed=0, rotate=8)
        tracer = RequestTracer(sample_every=1, seed=0)
        result = run_benchmark(config, "mcf", 600, tracer=tracer)
        assert result.stats.maintenance_ops > 0
        assert result.stats.maintenance_cycles > 0
        for span in tracer.finished:
            assert span.check() == [], span.check()
