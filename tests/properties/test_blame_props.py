"""Property tests: blame attribution tiles every span exactly.

The tracer's core structural contract, stated in
:mod:`repro.obs.trace`: for every sampled request, the blame segments
are non-overlapping, gap-free from queue admission to completion, and
sum exactly to the measured latency — no cycle is double-blamed and no
cycle escapes attribution.  Hypothesis drives the claim across every
registered scheduling policy, both benchmark extremes, and randomized
(sample_every, seed) pairs, so no policy's stall pattern (PALP's
overlap ranking, RBLA's adaptive feedback, FCFS head-of-line blocking)
can open a gap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fgnvm
from repro.memsys.policies import apply_policy, policy_names
from repro.obs.trace import BLAME_CAUSES, BLAME_SERVICE, RequestTracer
from repro.sim.experiment import run_benchmark

POLICY_NAMES = policy_names()


def traced_run(policy, benchmark, requests, sample_every, seed):
    config = apply_policy(fgnvm(4, 2), policy)
    config.org.rows_per_bank = 256
    tracer = RequestTracer(sample_every=sample_every, seed=seed)
    result = run_benchmark(config, benchmark, requests, tracer=tracer)
    return tracer, result


class TestBlameTilesLatency:
    @settings(max_examples=12, deadline=None)
    @given(
        policy=st.sampled_from(POLICY_NAMES),
        benchmark=st.sampled_from(["mcf", "milc"]),
        requests=st.integers(min_value=50, max_value=400),
        sample_every=st.integers(min_value=1, max_value=7),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_segments_are_gap_free_and_sum_to_latency(
        self, policy, benchmark, requests, sample_every, seed
    ):
        tracer, _ = traced_run(
            policy, benchmark, requests, sample_every, seed
        )
        # Every admitted sampled request completed (no span leaks) ...
        assert not tracer.active
        # ... the deterministic 1-in-N arithmetic held ...
        phase = seed % sample_every
        expected = len([
            i for i in range(tracer._admitted)
            if i % sample_every == phase
        ])
        assert len(tracer.finished) == expected
        assert tracer.finished, "sample must not be empty"
        # ... and each span's segments tile [arrival, completion).
        for span in tracer.finished:
            assert span.check() == [], span.check()
            assert span.completion > span.arrival
            assert sum(
                end - start for start, end, _ in span.segments
            ) == span.latency
            cursor = span.arrival
            for start, end, cause in span.segments:
                assert start == cursor and end > start
                assert cause in BLAME_CAUSES
                cursor = end
            assert cursor == span.completion
            # Every request ends in actual service of some kind.
            assert span.segments[-1][2] == BLAME_SERVICE
            assert span.service != ""

    @settings(max_examples=6, deadline=None)
    @given(
        policy=st.sampled_from(POLICY_NAMES),
        sample_every=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_sampling_is_reproducible(self, policy, sample_every, seed):
        """Two identical traced runs sample the identical request set
        and attribute the identical segments — the property that keeps
        cached results comparable to traced re-runs."""
        first, _ = traced_run(policy, "mcf", 150, sample_every, seed)
        second, _ = traced_run(policy, "mcf", 150, sample_every, seed)
        assert [
            (s.arrival, s.completion, s.segments) for s in first.finished
        ] == [
            (s.arrival, s.completion, s.segments) for s in second.finished
        ]

    def test_tracing_never_perturbs_results_across_policies(self):
        """Per-policy belt-and-braces for the overhead guard: the traced
        and untraced runs of every registered policy are bit-identical."""
        for policy in POLICY_NAMES:
            tracer, traced = traced_run(policy, "mcf", 200, 2, 1)
            config = apply_policy(fgnvm(4, 2), policy)
            config.org.rows_per_bank = 256
            plain = run_benchmark(config, "mcf", 200)
            assert plain.summary() == traced.summary(), policy
