"""Property tests: the content-addressed cache key is exactly as
discriminating as the job description.

* stable — re-constructing an identical config (and job) from scratch
  always reproduces the identical key,
* sensitive — changing any single field of the config, or any trace
  parameter, or the code-version tag, always changes the key.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fgnvm
from repro.config.params import override_nested
from repro.sim.parallel import ExperimentJob, canonical_config, job_key

#: Valid (subarray_groups, column_divisions) draw space.
GEOMETRIES = [(1, 1), (2, 2), (4, 4), (8, 2), (8, 8)]

#: Dotted paths covering every nested config section, with a mutator
#: guaranteed to produce a different value of the same type.
FIELD_MUTATIONS = [
    ("name", lambda v: v + "-x"),
    ("timing.trcd_ns", lambda v: v + 1.0),
    ("timing.tcas_ns", lambda v: v + 0.5),
    ("timing.tccd_cycles", lambda v: v + 1),
    ("energy.read_pj_per_bit", lambda v: v + 0.25),
    ("energy.background_epoch_ns", lambda v: v * 2),
    ("org.rows_per_bank", lambda v: v * 2),
    ("org.subarray_groups", lambda v: v + 1),
    ("org.column_divisions", lambda v: v + 1),
    ("org.per_sag_row_buffers", lambda v: not v),
    ("org.cd_interleaved", lambda v: not v),
    ("controller.read_queue_entries", lambda v: v + 1),
    ("controller.write_high_watermark", lambda v: v + 1),
    ("controller.eager_writes", lambda v: not v),
    ("controller.max_writes_per_bank", lambda v: 2 if v != 2 else 3),
    ("cpu.rob_entries", lambda v: v + 1),
    ("cpu.clock_ghz", lambda v: v + 0.1),
    ("sim.max_cycles", lambda v: v + 1),
    ("sim.warmup_requests", lambda v: v + 1),
]


def config_from(draw_geometry, rows, rob):
    sags, cds = draw_geometry
    cfg = fgnvm(sags, cds)
    cfg.org.rows_per_bank = rows
    cfg.cpu.rob_entries = rob
    return cfg


geometry = st.sampled_from(GEOMETRIES)
rows = st.sampled_from([256, 1024, 8192])
rob = st.integers(min_value=16, max_value=512)


@given(geometry=geometry, rows=rows, rob=rob,
       requests=st.integers(1, 10**6),
       seed=st.one_of(st.none(), st.integers(0, 2**31)))
@settings(max_examples=100, deadline=None)
def test_key_stable_under_reconstruction(geometry, rows, rob, requests,
                                         seed):
    first = ExperimentJob(config_from(geometry, rows, rob), "mcf",
                          requests, seed)
    rebuilt = ExperimentJob(config_from(geometry, rows, rob), "mcf",
                            requests, seed)
    assert canonical_config(first.config) == canonical_config(rebuilt.config)
    assert job_key(first) == job_key(rebuilt)


@given(geometry=geometry, rows=rows, rob=rob,
       mutation=st.sampled_from(FIELD_MUTATIONS))
@settings(max_examples=150, deadline=None)
def test_key_distinct_across_any_single_field_change(geometry, rows, rob,
                                                     mutation):
    path, mutate = mutation
    cfg = config_from(geometry, rows, rob)
    if path == "name":
        changed = cfg.copy()
        changed.name = mutate(cfg.name)
    else:
        target = cfg
        for part in path.split(".")[:-1]:
            target = getattr(target, part)
        changed = override_nested(
            cfg, path, mutate(getattr(target, path.split(".")[-1]))
        )
    assert canonical_config(changed) != canonical_config(cfg)
    assert job_key(ExperimentJob(changed, "mcf", 100)) != job_key(
        ExperimentJob(cfg, "mcf", 100)
    )


@given(geometry=geometry,
       requests=st.integers(1, 10**6),
       seed=st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_key_distinct_across_trace_parameters(geometry, requests, seed):
    cfg = config_from(geometry, 1024, 192)
    base = job_key(ExperimentJob(cfg, "mcf", requests))
    assert job_key(ExperimentJob(cfg, "lbm", requests)) != base
    assert job_key(ExperimentJob(cfg, "mcf", requests + 1)) != base
    assert job_key(ExperimentJob(cfg, "mcf", requests, seed)) != base
    assert job_key(ExperimentJob(cfg, "mcf", requests),
                   code_version="other") != base
