"""Property tests: queue occupancy accounting and drain hysteresis."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsys.queues import TransactionQueue, WriteQueue
from repro.memsys.request import MemRequest, OpType


@given(
    capacity=st.integers(1, 32),
    pushes=st.integers(0, 64),
)
@settings(max_examples=100, deadline=None)
def test_occupancy_never_exceeds_capacity(capacity, pushes):
    queue = TransactionQueue(capacity)
    accepted = 0
    for i in range(pushes):
        if queue.is_full:
            break
        queue.push(MemRequest(OpType.READ, i * 64), i)
        accepted += 1
    assert len(queue) == accepted <= capacity
    assert queue.space() == capacity - accepted


@given(ops=st.lists(st.tuples(st.booleans(), st.integers(0, 15)),
                    max_size=80))
@settings(max_examples=100, deadline=None)
def test_forwarding_matches_live_contents(ops):
    """forwards(addr) is true iff a write to addr is still queued."""
    queue = WriteQueue(capacity=64, high_watermark=48, low_watermark=8)
    live = {}
    for push, slot in ops:
        address = slot * 64
        if push and not queue.is_full:
            req = MemRequest(OpType.WRITE, address)
            queue.push(req, 0)
            live.setdefault(address, []).append(req)
        elif not push and live.get(address):
            queue.remove(live[address].pop(0))
            if not live[address]:
                del live[address]
    for slot in range(16):
        address = slot * 64
        assert queue.forwards(address) == bool(live.get(address))


@given(events=st.lists(st.booleans(), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_drain_hysteresis_invariant(events):
    """Draining only flips on at >= high and off strictly below low."""
    queue = WriteQueue(capacity=16, high_watermark=12, low_watermark=4)
    pending = []
    was_draining = False
    for push in events:
        if push and not queue.is_full:
            req = MemRequest(OpType.WRITE, len(pending) * 64)
            queue.push(req, 0)
            pending.append(req)
        elif not push and pending:
            queue.remove(pending.pop())
        draining = queue.draining
        if draining and not was_draining:
            assert len(queue) >= queue.high_watermark
        if was_draining and not draining:
            assert len(queue) < queue.low_watermark
        was_draining = draining
