"""Property tests: the FgNVM bank keeps its invariants under random use.

A random, legally-scheduled stream of reads/writes must never violate:

* issue-at-earliest-start always succeeds (no ProtocolError),
* every sense/write holds disjoint CD resources (the grid enforces it
  by raising on double-booking),
* row hits never re-sense (sense count only grows on miss/underfetch),
* the buffer tag always names the SAG's open row lineage.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fgnvm
from repro.core.fgnvm_bank import make_fgnvm_bank
from repro.memsys.address import AddressMapper
from repro.memsys.request import (
    SERVICE_ROW_HIT,
    MemRequest,
    OpType,
)
from repro.memsys.stats import StatsCollector


def build_bank(sags=4, cds=4):
    cfg = fgnvm(sags, cds)
    cfg.org.rows_per_bank = 64
    stats = StatsCollector()
    bank = make_fgnvm_bank(0, cfg.org, cfg.timing.cycles(), stats)
    return bank, AddressMapper(cfg.org), stats


operations = st.lists(
    st.tuples(
        st.booleans(),          # is_write
        st.integers(0, 63),     # row
        st.integers(0, 15),     # col
    ),
    min_size=1,
    max_size=40,
)


@given(ops=operations)
@settings(max_examples=100, deadline=None)
def test_random_streams_keep_invariants(ops):
    bank, mapper, stats = build_bank()
    now = 0
    hits_before = 0
    for is_write, row, col in ops:
        op = OpType.WRITE if is_write else OpType.READ
        req = MemRequest(op, mapper.encode(row=row, col=col))
        req.decoded = mapper.decode(req.address)
        kind_before = bank.classify(req)
        start = bank.earliest_start(req, now)
        assert start >= now
        senses_before = stats.senses
        result = bank.issue(req, start)  # must not raise
        assert result.kind == kind_before
        if kind_before == SERVICE_ROW_HIT and not is_write:
            assert stats.senses == senses_before  # hits never sense
            assert stats.row_hits > hits_before
        hits_before = stats.row_hits
        assert result.data_ready >= start
        assert result.bus_desired_start >= start
        now = start  # time never goes backwards


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_buffer_tags_point_at_plausible_rows(ops):
    bank, mapper, stats = build_bank()
    now = 0
    touched_rows = set()
    for is_write, row, col in ops:
        op = OpType.WRITE if is_write else OpType.READ
        req = MemRequest(op, mapper.encode(row=row, col=col))
        req.decoded = mapper.decode(req.address)
        touched_rows.add(req.decoded.row)
        start = bank.earliest_start(req, now)
        bank.issue(req, start)
        now = start
    for cd, tag in enumerate(bank.buffer_tag):
        if tag is not None:
            sag, tag_row = tag
            assert tag_row in touched_rows
            assert 0 <= sag < bank.subarray_groups


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_read_count_conservation(ops):
    bank, mapper, stats = build_bank()
    now = 0
    reads = writes = 0
    for is_write, row, col in ops:
        op = OpType.WRITE if is_write else OpType.READ
        req = MemRequest(op, mapper.encode(row=row, col=col))
        req.decoded = mapper.decode(req.address)
        start = bank.earliest_start(req, now)
        bank.issue(req, start)
        now = start
        if is_write:
            writes += 1
        else:
            reads += 1
    assert stats.reads == reads
    assert stats.writes == writes
    assert stats.row_hits + stats.row_misses + stats.underfetches == reads


@given(
    ops=operations,
    dims=st.sampled_from([(1, 1), (8, 2), (2, 8), (8, 8)]),
)
@settings(max_examples=60, deadline=None)
def test_invariants_hold_across_grids(ops, dims):
    sags, cds = dims
    bank, mapper, stats = build_bank(sags, cds)
    now = 0
    for is_write, row, col in ops:
        op = OpType.WRITE if is_write else OpType.READ
        req = MemRequest(op, mapper.encode(row=row, col=col))
        req.decoded = mapper.decode(req.address)
        start = bank.earliest_start(req, now)
        bank.issue(req, start)
        now = start
    # Sense energy is always a whole number of CD slices.
    assert stats.sense_bits % bank.sense_bits == 0
