"""Property tests: ROB occupancy accounting and LLC set-theory bounds."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.llc import LastLevelCache
from repro.cpu.rob import ReorderBuffer
from repro.memsys.request import MemRequest, OpType


class TestRobProperties:
    @given(
        capacity=st.integers(1, 64),
        ops=st.lists(
            st.one_of(
                st.tuples(st.just("insts"), st.integers(1, 20)),
                st.tuples(st.just("load"), st.booleans()),
                st.tuples(st.just("retire"), st.integers(1, 30)),
            ),
            max_size=60,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_occupancy_is_exact(self, capacity, ops):
        rob = ReorderBuffer(capacity)
        expected = 0
        for kind, value in ops:
            if kind == "insts":
                expected += rob.push_instructions(value)
            elif kind == "load":
                req = MemRequest(OpType.READ, 0x40)
                if value:  # completed load
                    req.mark_queued(0)
                    req.mark_issued(0, 1, "row_hit")
                    req.mark_completed()
                if rob.push_load(req):
                    expected += 1
            else:
                expected -= rob.retire(value)
            assert rob.occupancy == expected
            assert 0 <= rob.occupancy <= capacity
            assert rob.free_slots == capacity - rob.occupancy

    @given(count=st.integers(0, 100), budget=st.integers(1, 300))
    @settings(max_examples=100, deadline=None)
    def test_plain_instructions_always_drain(self, count, budget):
        rob = ReorderBuffer(128)
        accepted = rob.push_instructions(count)
        retired = 0
        while True:
            step = rob.retire(budget)
            if step == 0:
                break
            retired += step
        assert retired == accepted
        assert rob.is_empty


class TestLlcProperties:
    @given(
        blocks=st.lists(
            st.tuples(st.integers(0, 255), st.booleans()), max_size=300
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_set_theory_bounds(self, blocks):
        cache = LastLevelCache(size_bytes=8 * 1024, ways=4)  # 128 lines
        touched = set()
        for line, is_write in blocks:
            cache.access(line * 64, is_write)
            touched.add(line)
        stats = cache.stats
        assert stats.accesses == len(blocks)
        # Every distinct block misses at least once (cold).
        assert stats.misses >= len(touched)
        assert stats.writebacks <= stats.misses
        assert cache.resident_lines() <= min(128, len(touched))
        assert stats.misses + (stats.accesses - stats.misses) == (
            stats.accesses
        )

    @given(
        lines=st.lists(st.integers(0, 3), min_size=1, max_size=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_small_working_set_never_remisses(self, lines):
        # 4 distinct lines into a 4-way single-set cache: after the cold
        # miss, every access hits.
        cache = LastLevelCache(size_bytes=4 * 64, ways=4)
        for line in lines:
            cache.access(line * 64, False)
        assert cache.stats.misses == len(set(lines))
