"""Whole-simulator property tests over random small traces.

Invariants checked for every architecture on arbitrary (bounded)
workloads: the run completes, every request is serviced exactly once,
instruction accounting is exact, read latencies respect the physical
minimum, and reruns are bit-identical.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_nvm, fgnvm, many_banks
from repro.memsys.request import OpType
from repro.sim.simulator import simulate
from repro.workloads.record import TraceRecord, total_instructions

#: Bounded random traces: up to 60 accesses over a 1 MiB footprint.
trace_strategy = st.lists(
    st.tuples(
        st.integers(0, 40),          # gap
        st.booleans(),               # is_write
        st.integers(0, (1 << 20) // 64 - 1),  # line index
    ),
    max_size=60,
)


def to_records(raw):
    return [
        TraceRecord(gap, OpType.WRITE if w else OpType.READ, line * 64)
        for gap, w, line in raw
    ]


def small(cfg):
    cfg.org.rows_per_bank = 256
    return cfg


ARCHES = {
    "baseline": lambda: small(baseline_nvm()),
    "fgnvm": lambda: small(fgnvm(4, 4)),
    "many-banks": lambda: small(many_banks(4, 4)),
}


@pytest.mark.parametrize("arch", list(ARCHES), ids=list(ARCHES))
@given(raw=trace_strategy)
@settings(max_examples=25, deadline=None)
def test_conservation_and_accounting(arch, raw):
    trace = to_records(raw)
    result = simulate(ARCHES[arch](), trace)
    reads = sum(1 for r in trace if r.op is OpType.READ)
    writes = len(trace) - reads
    assert result.stats.reads == reads
    assert result.stats.writes == writes
    assert result.instructions == total_instructions(trace)
    assert result.cycles >= 1


@given(raw=trace_strategy)
@settings(max_examples=25, deadline=None)
def test_read_latency_floor(raw):
    trace = to_records(raw)
    config = small(fgnvm(4, 4))
    result = simulate(config, trace)
    if result.stats.reads:
        timing = config.timing.cycles()
        floor = timing.tcas_hit + timing.tburst  # forwarded/hit minimum
        # avg >= floor implies every latency >= floor given the floor is
        # the global minimum service time.
        assert result.stats.avg_read_latency >= floor - 1e-9


@given(raw=trace_strategy)
@settings(max_examples=15, deadline=None)
def test_reruns_are_bit_identical(raw):
    trace = to_records(raw)
    first = simulate(small(fgnvm(4, 4)), trace)
    second = simulate(small(fgnvm(4, 4)), trace)
    assert first.stats.as_dict() == second.stats.as_dict()
    assert first.cycles == second.cycles


@given(raw=trace_strategy)
@settings(max_examples=15, deadline=None)
def test_energy_components_consistent_with_counters(raw):
    trace = to_records(raw)
    config = small(fgnvm(4, 4))
    result = simulate(config, trace)
    stats = result.stats
    assert result.energy.read_pj == stats.sense_bits * 2.0
    assert result.energy.write_pj == stats.write_bits * 16.0
    assert result.energy.background_pj > 0 or stats.cycles == 1


@given(raw=trace_strategy, raw2=trace_strategy)
@settings(max_examples=10, deadline=None)
def test_multicore_conservation(raw, raw2):
    from repro.sim.multicore import run_mix

    traces = [to_records(raw), to_records(raw2)]
    result = run_mix(small(fgnvm(4, 4)), traces)
    total = len(traces[0]) + len(traces[1])
    assert result.stats.requests == total
    assert sum(result.per_core_instructions) == sum(
        total_instructions(t) for t in traces
    )
