"""Property tests on the pure tile-conflict rules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.access_modes import (
    accessible_fraction_during_write,
    available_tiles_during,
    max_parallel_accesses,
    multi_activation_legal,
    tiles_conflict,
)

tiles = st.tuples(st.integers(0, 31), st.integers(0, 31))


@given(a=tiles, b=tiles)
@settings(max_examples=200, deadline=None)
def test_conflict_is_symmetric(a, b):
    assert tiles_conflict(a, b) == tiles_conflict(b, a)


@given(a=tiles)
def test_conflict_is_reflexive(a):
    assert tiles_conflict(a, a)


@given(group=st.lists(tiles, max_size=8))
@settings(max_examples=200, deadline=None)
def test_legality_equals_pairwise_nonconflict(group):
    pairwise = all(
        not tiles_conflict(group[i], group[j])
        for i in range(len(group))
        for j in range(i + 1, len(group))
    )
    assert multi_activation_legal(group) == pairwise


@given(group=st.lists(tiles, max_size=8))
@settings(max_examples=200, deadline=None)
def test_legal_groups_respect_grid_bound(group):
    if multi_activation_legal(group):
        assert len(group) <= max_parallel_accesses(32, 32)


@given(
    busy=st.lists(tiles, max_size=4),
    dims=st.sampled_from([(4, 4), (8, 2), (32, 32)]),
)
@settings(max_examples=100, deadline=None)
def test_available_tiles_never_conflict_with_busy(busy, dims):
    sags, cds = dims
    busy = [(s % sags, c % cds) for s, c in busy]
    for tile in available_tiles_during(busy, sags, cds):
        for occupied in busy:
            assert not tiles_conflict(tile, occupied)


@given(
    sags=st.integers(1, 64),
    cds=st.integers(1, 64),
)
def test_accessible_fraction_bounds(sags, cds):
    fraction = accessible_fraction_during_write(sags, cds)
    assert 0.0 <= fraction < 1.0
    # Consistency with the explicit enumeration.
    assert fraction == len(available_tiles_during([(0, 0)], sags, cds)) / (
        sags * cds
    )
