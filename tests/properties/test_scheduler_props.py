"""Property tests: every fast policy is observationally its oracle.

The event-driven controller replaces sort-based ranking with
single-pass min-scans over memoized per-bank (kind, constraint)
lookups.  These properties pin each registered policy's fast
implementation against its brute-force reference oracle
(:mod:`repro.memsys.policies`):

* on randomized scripted candidate sets (arrival ties broken by req_id,
  row-hit flips, blocked candidates mixed in, banks with in-flight
  writes for the PALP overlap signal), through both the
  ``kind_and_constraint`` fast path and the protocol fallback;
* on a live :class:`~repro.core.fgnvm_bank.FgNvmBank`, where the memo
  churns across real issues and stateful policies (RBLA) receive the
  ``note_issued`` feedback stream; and
* end-to-end: for every registered policy the same configuration
  produces cycle-identical run summaries whether the controller runs
  the fast implementation (the default) or
  ``REPRO_SCHEDULER=reference`` forces the oracle.

The FRFCFS-specific classes predate the registry and stay as extra
belt-and-braces coverage of the repo-wide default pair.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import baseline_nvm, fgnvm
from repro.core.fgnvm_bank import make_fgnvm_bank
from repro.memsys.address import AddressMapper
from repro.memsys.policies import apply_policy, get_policy, policy_names
from repro.memsys.request import (
    SERVICE_ROW_HIT,
    SERVICE_ROW_MISS,
    SERVICE_UNDERFETCH,
    SERVICE_WRITE,
    MemRequest,
    OpType,
)
from repro.memsys.scheduler import FrfcfsScheduler, IncrementalFrfcfs
from repro.memsys.stats import StatsCollector
from repro.sim.experiment import run_benchmark

NOW = 100

#: Every registered policy, id-stable for parametrised matrices.
POLICY_NAMES = policy_names()


class ScriptedBank:
    """Protocol-only test double: no ``kind_and_constraint`` attribute.

    Exercises the scheduler's fallback onto ``is_row_hit`` /
    ``earliest_start`` — the path scriptable doubles and third-party
    bank models take.
    """

    def __init__(self):
        self.hits = {}
        self.ready = {}

    def is_row_hit(self, req):
        return self.hits[req.req_id]

    def earliest_start(self, req, now):
        return max(now, self.ready[req.req_id])


class CachedScriptedBank(ScriptedBank):
    """Double exposing the memoized fast-path API banks provide.

    Maps the scripted (hit, ready) pair onto the (kind, constraint)
    contract: constraint is now-independent, row-hit status follows from
    the service kind exactly as in ``FgNvmBank.kind_and_constraint``.
    """

    def kind_and_constraint(self, req):
        if self.hits[req.req_id]:
            kind = SERVICE_WRITE if req.is_write else SERVICE_ROW_HIT
        else:
            kind = SERVICE_ROW_MISS if req.req_id % 2 else SERVICE_UNDERFETCH
        return kind, self.ready[req.req_id]


def scripted_candidates(spec, bank_cls):
    """Build (req, bank) candidates from drawn (arrival, hit, delay)."""
    bank = bank_cls()
    candidates = []
    for arrival, hit, delay in spec:
        req = MemRequest(OpType.WRITE if hit and arrival % 2 else OpType.READ,
                         address=0)
        req.mark_queued(arrival)
        bank.hits[req.req_id] = hit
        # delay <= 0 keeps the candidate issuable at NOW; > 0 blocks it.
        bank.ready[req.req_id] = NOW + delay
        candidates.append((req, bank))
    return candidates


#: (arrival_cycle, is_row_hit, readiness delay relative to NOW).  The
#: tiny arrival range forces ties (broken by req_id); delays straddle
#: zero so blocked candidates appear alongside issuable ones.
CANDIDATE_SPEC = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.booleans(),
        st.integers(min_value=-4, max_value=4),
    ),
    min_size=0,
    max_size=12,
)


class TestScriptedEquivalence:
    @given(spec=CANDIDATE_SPEC)
    @settings(max_examples=200, deadline=None)
    def test_pick_matches_reference_fallback_path(self, spec):
        candidates = scripted_candidates(spec, ScriptedBank)
        reference = FrfcfsScheduler().rank(candidates, NOW)
        picked = IncrementalFrfcfs().pick(candidates, NOW)
        if not reference:
            assert picked is None
        else:
            assert picked is reference[0]

    @given(spec=CANDIDATE_SPEC)
    @settings(max_examples=200, deadline=None)
    def test_pick_matches_reference_cached_path(self, spec):
        candidates = scripted_candidates(spec, CachedScriptedBank)
        reference = FrfcfsScheduler().rank(candidates, NOW)
        picked = IncrementalFrfcfs().pick(candidates, NOW)
        if not reference:
            assert picked is None
        else:
            assert picked is reference[0]

    @given(spec=CANDIDATE_SPEC)
    @settings(max_examples=100, deadline=None)
    def test_blocked_horizon_is_min_blocked_constraint(self, spec):
        candidates = scripted_candidates(spec, CachedScriptedBank)
        _, horizon = IncrementalFrfcfs().pick_with_horizon(candidates, NOW)
        blocked = [bank.earliest_start(req, NOW)
                   for req, bank in candidates
                   if bank.earliest_start(req, NOW) > NOW]
        assert horizon == (min(blocked) if blocked else None)


def fresh_bank():
    cfg = fgnvm(4, 4)
    cfg.org.rows_per_bank = 64
    return (make_fgnvm_bank(0, cfg.org, cfg.timing.cycles(),
                            StatsCollector()),
            AddressMapper(cfg.org))


#: A workload against one live bank: (is_write, row, col) per request.
LIVE_SPEC = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=0, max_value=7),
    ),
    min_size=1,
    max_size=16,
)


class TestLiveBankEquivalence:
    """Replay random workloads, comparing picks as the memo churns."""

    @given(spec=LIVE_SPEC)
    @settings(max_examples=100, deadline=None)
    def test_pick_matches_reference_across_issues(self, spec):
        bank, mapper = fresh_bank()
        pending = []
        for index, (is_write, row, col) in enumerate(spec):
            address = mapper.encode(row=row, col=col)
            req = MemRequest(OpType.WRITE if is_write else OpType.READ,
                             address, decoded=mapper.decode(address))
            req.mark_queued(index // 2)  # paired arrivals force ties
            pending.append(req)

        incremental = IncrementalFrfcfs()
        reference = FrfcfsScheduler()
        now = 0
        guard = 0
        while pending:
            guard += 1
            assert guard < 10_000, "live replay failed to drain"
            candidates = [(req, bank) for req in pending]
            ranked = reference.rank(candidates, now)
            picked = incremental.pick(candidates, now)
            if not ranked:
                assert picked is None
                now += 1
                continue
            assert picked is ranked[0]
            req = picked[0]
            bank.issue(req, now)  # mutates state, drops the memo
            pending.remove(req)
            now += 1


class WritingScriptedBank(CachedScriptedBank):
    """Cached-path double that also reports scripted in-flight writes.

    Exercises the PALP overlap term; policies that ignore
    ``active_writes`` must rank identically across both bank flavours.
    """

    def __init__(self, writes_in_flight=0):
        super().__init__()
        self._writes_in_flight = writes_in_flight

    def active_writes(self, now):
        return self._writes_in_flight


def matrix_candidates(spec):
    """(req, bank) candidates over one idle and one writing bank."""
    banks = (WritingScriptedBank(0), WritingScriptedBank(1))
    candidates = []
    for arrival, hit, delay, bank_idx, is_write in spec:
        req = MemRequest(OpType.WRITE if is_write else OpType.READ,
                         address=0)
        req.mark_queued(arrival)
        bank = banks[bank_idx]
        bank.hits[req.req_id] = hit
        bank.ready[req.req_id] = NOW + delay
        candidates.append((req, bank))
    return candidates


#: (arrival, is_row_hit, readiness delay, bank index, is_write) — the
#: CANDIDATE_SPEC shape plus a bank axis (bank 1 has a write in flight)
#: and an explicit op axis, so PALP's overlap term and RBLA's per-bank
#: scores get distinct banks to tell apart.
MATRIX_SPEC = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=3),
        st.booleans(),
        st.integers(min_value=-4, max_value=4),
        st.integers(min_value=0, max_value=1),
        st.booleans(),
    ),
    min_size=0,
    max_size=12,
)


class TestPolicyMatrixScripted:
    """Every registered policy: fast pick == oracle's top rank."""

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @given(spec=MATRIX_SPEC)
    @settings(max_examples=60, deadline=None)
    def test_pick_matches_oracle(self, policy, spec):
        entry = get_policy(policy)
        candidates = matrix_candidates(spec)
        ranked = entry.oracle().rank(candidates, NOW)
        picked = entry.fast().pick(candidates, NOW)
        if not ranked:
            assert picked is None
        else:
            assert picked is ranked[0]

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @given(spec=MATRIX_SPEC)
    @settings(max_examples=40, deadline=None)
    def test_blocked_horizon_is_min_blocked_constraint(self, policy, spec):
        fast = get_policy(policy).fast()
        candidates = matrix_candidates(spec)
        _, horizon = fast.pick_with_horizon(candidates, NOW)
        blocked = [bank.earliest_start(req, NOW)
                   for req, bank in candidates
                   if bank.earliest_start(req, NOW) > NOW]
        assert horizon == (min(blocked) if blocked else None)


class TestPolicyMatrixLiveReplay:
    """Replay random workloads on a live bank for every policy.

    Stateful policies get the controller's ``note_issued`` feedback on
    both sides, so the oracle's score evolution tracks the fast
    policy's exactly — the same contract the controller honours.
    """

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    @given(spec=LIVE_SPEC)
    @settings(max_examples=40, deadline=None)
    def test_pick_matches_oracle_across_issues(self, policy, spec):
        entry = get_policy(policy)
        bank, mapper = fresh_bank()
        pending = []
        for index, (is_write, row, col) in enumerate(spec):
            address = mapper.encode(row=row, col=col)
            req = MemRequest(OpType.WRITE if is_write else OpType.READ,
                             address, decoded=mapper.decode(address))
            req.mark_queued(index // 2)
            pending.append(req)

        fast = entry.fast()
        oracle = entry.oracle()
        now = 0
        guard = 0
        while pending:
            guard += 1
            assert guard < 10_000, "live replay failed to drain"
            candidates = [(req, bank) for req in pending]
            ranked = oracle.rank(candidates, now)
            picked = fast.pick(candidates, now)
            if not ranked:
                assert picked is None
                now += 1
                continue
            assert picked is ranked[0]
            req = picked[0]
            result = bank.issue(req, now)
            for sched in (fast, oracle):
                note = getattr(sched, "note_issued", None)
                if note is not None:
                    note(req, bank, result.kind)
            pending.remove(req)
            now += 1


class TestEndToEndCycleIdentity:
    """The figure sweeps are bit-identical under either implementation."""

    CONFIGS = (baseline_nvm, lambda: fgnvm(4, 4), lambda: fgnvm(8, 2))

    @pytest.mark.parametrize("make_cfg", CONFIGS,
                             ids=("baseline", "fgnvm-4x4", "fgnvm-8x2"))
    def test_sweep_summary_identical(self, make_cfg, monkeypatch):
        def small(cfg):
            cfg.org.rows_per_bank = 1024
            return cfg

        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        fast = run_benchmark(small(make_cfg()), "mcf", 400)
        monkeypatch.setenv("REPRO_SCHEDULER", "reference")
        oracle = run_benchmark(small(make_cfg()), "mcf", 400)
        assert fast.summary() == oracle.summary()
        assert fast.cycles == oracle.cycles
        assert fast.ipc == oracle.ipc

    @pytest.mark.parametrize("policy", POLICY_NAMES)
    def test_policy_summary_identical_to_oracle(self, policy, monkeypatch):
        """Per-policy end-to-end identity: default impl vs forced oracle."""
        def make_cfg():
            cfg = fgnvm(4, 4)
            cfg.org.rows_per_bank = 1024
            return apply_policy(cfg, policy)

        monkeypatch.delenv("REPRO_SCHEDULER", raising=False)
        fast = run_benchmark(make_cfg(), "mcf", 400)
        monkeypatch.setenv("REPRO_SCHEDULER", "reference")
        oracle = run_benchmark(make_cfg(), "mcf", 400)
        assert fast.summary() == oracle.summary()
        assert fast.cycles == oracle.cycles
        assert fast.ipc == oracle.ipc
