"""Property tests for the policy registry itself.

Registration round-trip, duplicate-name rejection, and capability-flag
consistency: an organisation whose capability table forbids
reads-under-write must never be paired — at registration time for
pinned organisations, at validation time for configs — with a scheduler
that assumes them.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import fgnvm
from repro.config.params import BankArchitecture
from repro.errors import ConfigError, SchedulerError
from repro.memsys.policies import (
    ORGANISATION_CAPS,
    PolicySpec,
    get_policy,
    policy_names,
    register_policy,
    registered_policies,
    unregister_policy,
)
from repro.memsys.scheduler import FrfcfsScheduler, IncrementalFrfcfs

#: Names that cannot collide with built-ins or reserved env aliases.
FRESH_NAME = st.from_regex(r"zz-[a-z]{1,12}", fullmatch=True)

ARCHITECTURES = st.sampled_from(list(BankArchitecture))


def fresh_spec(name, organisation=None, requires_ruw=False):
    return PolicySpec(
        name=name,
        description="hypothesis-generated test policy",
        citation="n/a",
        fast=IncrementalFrfcfs,
        oracle=FrfcfsScheduler,
        organisation=organisation,
        requires_reads_under_write=requires_ruw,
    )


class TestRegistrationRoundTrip:
    @given(name=FRESH_NAME)
    @settings(max_examples=50, deadline=None)
    def test_register_get_unregister(self, name):
        before = policy_names()
        spec = fresh_spec(name)
        register_policy(spec)
        try:
            assert get_policy(name) is spec
            assert name in policy_names()
            assert registered_policies()[name] is spec
        finally:
            assert unregister_policy(name) is spec
        assert policy_names() == before
        with pytest.raises(SchedulerError) as err:
            get_policy(name)
        # The error is actionable: it lists what *is* registered.
        assert "registered policies:" in str(err.value)

    @given(name=FRESH_NAME)
    @settings(max_examples=25, deadline=None)
    def test_duplicate_name_rejected(self, name):
        register_policy(fresh_spec(name))
        try:
            with pytest.raises(ConfigError):
                register_policy(fresh_spec(name))
            # Explicit replacement is allowed and swaps the entry.
            replacement = fresh_spec(name)
            register_policy(replacement, replace=True)
            assert get_policy(name) is replacement
        finally:
            unregister_policy(name)

    @pytest.mark.parametrize("bad", ["", "  ", " padded ", "reference",
                                     "oracle", "frfcfs", "incremental"])
    def test_reserved_and_malformed_names_rejected(self, bad):
        with pytest.raises(ConfigError):
            register_policy(fresh_spec(bad))

    def test_builtins_present(self):
        assert {"fcfs", "frfcfs-incremental", "palp", "salp",
                "rbla"} <= set(policy_names())


class TestCapabilityConsistency:
    @given(name=FRESH_NAME, organisation=ARCHITECTURES,
           requires=st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_pinned_organisation_must_satisfy_flags(
            self, name, organisation, requires):
        spec = fresh_spec(name, organisation=organisation,
                          requires_ruw=requires)
        forbidden = (requires
                     and not ORGANISATION_CAPS[organisation].reads_under_write)
        if forbidden:
            with pytest.raises(ConfigError):
                register_policy(spec)
            assert name not in policy_names()
        else:
            register_policy(spec)
            try:
                assert get_policy(name) is spec
            finally:
                unregister_policy(name)

    @given(name=FRESH_NAME, architecture=ARCHITECTURES,
           requires=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_config_pairing_checked_at_validation(
            self, name, architecture, requires):
        """An unpinned policy is still capability-checked per config."""
        from repro.config.validate import validation_errors

        register_policy(fresh_spec(name, requires_ruw=requires))
        try:
            cfg = fgnvm(4, 4)
            cfg.org.architecture = architecture
            if architecture is BankArchitecture.SALP:
                cfg.org.column_divisions = 1
            elif architecture is BankArchitecture.BASELINE:
                cfg.org.subarray_groups = 1
                cfg.org.column_divisions = 1
            cfg.controller.policy = name
            problems = validation_errors(cfg)
            forbidden = (
                requires
                and not ORGANISATION_CAPS[architecture].reads_under_write
            )
            if forbidden:
                assert any("reads proceed under" in p for p in problems)
            else:
                assert not any("reads proceed under" in p for p in problems)
        finally:
            unregister_policy(name)

    def test_caps_table_covers_every_architecture(self):
        assert set(ORGANISATION_CAPS) == set(BankArchitecture)

    def test_palp_cannot_run_on_baseline(self):
        from repro.config import baseline_nvm

        cfg = baseline_nvm()
        cfg.controller.policy = "palp"
        from repro.config.validate import validation_errors

        assert any("reads proceed under" in p
                   for p in validation_errors(cfg))
