"""Property tests: the packed pipeline is bit-identical to records.

The contracts pinned here are the ones every transport relies on:

* the generator's packed and record outputs describe the same stream,
* the framed blob round-trips byte-for-byte (shared-memory segments
  carry exactly these bytes),
* trace file I/O round-trips through the streaming packed readers,
* the optional numpy fast path computes the identical reductions.
"""

import dataclasses
import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.packed import (
    OP_READ,
    OP_WRITE,
    PackedTrace,
    trace_key,
)
from repro.workloads.spec_profiles import benchmark_names, get_profile
from repro.workloads.trace_io import (
    read_nvmain_trace_packed,
    read_trace_packed,
    trace_to_string,
    write_nvmain_trace,
)
from repro.workloads.tracegen import ProfileTraceGenerator

BENCHMARKS = benchmark_names()

rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from((OP_READ, OP_WRITE)),
        st.integers(min_value=0, max_value=(1 << 45) - 1),
    ),
    max_size=200,
)


def packed_from(row_list):
    trace = PackedTrace()
    for gap, op, address in row_list:
        trace.append(gap, op, address)
    return trace


@given(
    bench=st.sampled_from(BENCHMARKS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=0, max_value=300),
)
@settings(max_examples=30, deadline=None)
def test_generator_packed_equals_records(bench, seed, count):
    profile = dataclasses.replace(get_profile(bench), seed=seed)
    packed = ProfileTraceGenerator(profile).packed(count)
    records = list(ProfileTraceGenerator(profile).records(count))
    assert packed.to_records() == records
    assert packed.view() == records


@given(row_list=rows)
@settings(max_examples=50, deadline=None)
def test_blob_round_trip_byte_identical(row_list):
    trace = packed_from(row_list)
    blob = trace.to_bytes()
    decoded = PackedTrace.from_bytes(blob)
    assert list(decoded.gaps) == list(trace.gaps)
    assert list(decoded.ops) == list(trace.ops)
    assert list(decoded.addresses) == list(trace.addresses)
    assert decoded.to_bytes() == blob


@given(row_list=rows)
@settings(max_examples=50, deadline=None)
def test_from_buffer_matches_from_bytes(row_list):
    trace = packed_from(row_list)
    carrier = bytearray(trace.to_bytes()) + bytes(512)  # page-rounded
    mapped = PackedTrace.from_buffer(memoryview(carrier))
    try:
        assert mapped.to_records() == trace.to_records()
    finally:
        mapped.close()


@given(row_list=rows)
@settings(max_examples=50, deadline=None)
def test_native_text_round_trip(row_list):
    trace = packed_from(row_list)
    text = trace_to_string(trace.view())
    back = read_trace_packed(io.StringIO(text))
    assert back.to_records() == trace.to_records()


@given(
    row_list=rows,
    cpi=st.sampled_from((1.0, 2.0, 4.0)),
)
@settings(max_examples=30, deadline=None)
def test_nvmain_round_trip_at_integral_cpi(row_list, cpi):
    # With integral cycles-per-instruction the gap<->cycle conversion
    # is exact: cycle deltas are (gap + 1) * cpi, recovered precisely.
    trace = packed_from(row_list)
    buffer = io.StringIO()
    write_nvmain_trace(trace.view(), buffer, cycles_per_instruction=cpi)
    back = read_nvmain_trace_packed(
        io.StringIO(buffer.getvalue()), cycles_per_instruction=cpi
    )
    assert back.to_records() == trace.to_records()


@given(
    row_list=rows,
    cpi=st.floats(min_value=0.25, max_value=4.0),
)
@settings(max_examples=30, deadline=None)
def test_nvmain_conversion_preserves_ops_and_addresses(row_list, cpi):
    trace = packed_from(row_list)
    buffer = io.StringIO()
    write_nvmain_trace(trace.view(), buffer, cycles_per_instruction=cpi)
    back = read_nvmain_trace_packed(
        io.StringIO(buffer.getvalue()), cycles_per_instruction=cpi
    )
    assert list(back.ops) == list(trace.ops)
    assert list(back.addresses) == list(trace.addresses)


@given(row_list=rows)
@settings(max_examples=30, deadline=None)
def test_numpy_fast_path_matches_pure_python(row_list):
    numpy = pytest.importorskip("numpy")
    assert numpy is not None
    trace = packed_from(row_list)
    import os

    os.environ.pop("REPRO_PACKED_NUMPY", None)
    plain = (trace.total_instructions(), trace.read_count())
    os.environ["REPRO_PACKED_NUMPY"] = "1"
    try:
        fast = (trace.total_instructions(), trace.read_count())
    finally:
        os.environ.pop("REPRO_PACKED_NUMPY", None)
    assert fast == plain


@given(
    bench=st.sampled_from(BENCHMARKS),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    count=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=30, deadline=None)
def test_trace_key_is_deterministic_and_seed_sensitive(bench, seed, count):
    profile = dataclasses.replace(get_profile(bench), seed=seed)
    key = trace_key(profile, count)
    assert key == trace_key(profile, count)
    other = dataclasses.replace(profile, seed=seed + 1)
    assert key != trace_key(other, count)
