"""Property tests: energy pricing is monotone, additive and positive."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import EnergyParams
from repro.core.energy import EnergyModel
from repro.memsys.stats import StatsCollector


def stats_of(sense_bits, write_bits, cycles, reads=0, row_misses=0):
    stats = StatsCollector()
    stats.sense_bits = sense_bits
    stats.write_bits = write_bits
    stats.cycles = cycles
    stats.reads = reads
    stats.row_misses = row_misses
    return stats


counters = st.integers(min_value=0, max_value=10**9)


@given(sense=counters, write=counters, cycles=counters)
@settings(max_examples=200, deadline=None)
def test_energy_components_non_negative_and_additive(sense, write, cycles):
    model = EnergyModel(EnergyParams(), tck_ns=2.5)
    breakdown = model.measure(stats_of(sense, write, cycles))
    assert breakdown.read_pj >= 0
    assert breakdown.write_pj >= 0
    assert breakdown.background_pj >= 0
    assert breakdown.total_pj == (
        breakdown.read_pj + breakdown.write_pj + breakdown.background_pj
    )


@given(
    sense=counters, write=counters, cycles=counters,
    extra=st.integers(1, 10**6),
)
@settings(max_examples=200, deadline=None)
def test_more_sensed_bits_never_cost_less(sense, write, cycles, extra):
    model = EnergyModel(EnergyParams(), tck_ns=2.5)
    small = model.measure(stats_of(sense, write, cycles))
    large = model.measure(stats_of(sense + extra, write, cycles))
    assert large.total_pj > small.total_pj


@given(
    reads=st.integers(0, 10**6),
    misses_a=st.integers(0, 10**6),
    extra=st.integers(1, 10**6),
)
@settings(max_examples=200, deadline=None)
def test_perfect_pricing_monotone_in_misses(reads, misses_a, extra):
    model = EnergyModel(EnergyParams(), tck_ns=2.5)
    a = model.measure_perfect(
        stats_of(0, 0, 0, reads=reads, row_misses=misses_a)
    )
    b = model.measure_perfect(
        stats_of(0, 0, 0, reads=reads, row_misses=misses_a + extra)
    )
    assert b.read_pj > a.read_pj


@given(sense=counters, write=counters, cycles=st.integers(1, 10**9))
@settings(max_examples=200, deadline=None)
def test_relative_energy_scales_linearly(sense, write, cycles):
    model = EnergyModel(EnergyParams(), tck_ns=2.5)
    base = model.measure(stats_of(max(sense, 1), write, cycles))
    double = model.measure(stats_of(2 * max(sense, 1), 2 * write,
                                    2 * cycles))
    assert double.relative_to(base) == pytest.approx(2.0)
