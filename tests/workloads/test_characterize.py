"""Trace characterisation: measured statistics match construction."""

import pytest

from repro.config import fgnvm
from repro.memsys.request import OpType
from repro.workloads.characterize import (
    TraceCharacter,
    characterize,
    fidelity_report,
)
from repro.workloads.record import TraceRecord
from repro.workloads.spec_profiles import PROFILES
from repro.workloads.synthetic import (
    multi_stream_kernel,
    random_kernel,
    stream_kernel,
)
from repro.workloads.tracegen import generate_trace


class TestKernelsHaveKnownCharacter:
    def test_stream_has_high_row_locality(self):
        character = characterize(stream_kernel(500, gap=10))
        assert character.row_locality > 0.8
        assert character.write_fraction == 0.0
        assert character.footprint_lines == 500

    def test_random_has_low_row_locality_and_high_spread(self):
        # Footprint spans the full default capacity so rows roam every
        # SAG (the default org is 8 banks x 32768 rows x 1KB = 256 MiB).
        character = characterize(
            random_kernel(1500, footprint_bytes=1 << 28, gap=10, seed=1)
        )
        assert character.row_locality < 0.05
        assert character.bank_spread > 0.95
        assert character.sag_spread > 0.9

    def test_single_stream_concentrates_resources(self):
        # One short sequential run stays inside one row/bank at first.
        character = characterize(stream_kernel(8, gap=10))
        assert character.bank_spread == 0.0
        assert character.cd_spread > 0.0  # walks the row's CDs

    def test_burstiness_counts_small_gaps(self):
        trace = [TraceRecord(0, OpType.READ, i * 64) for i in range(10)]
        trace += [TraceRecord(50, OpType.READ, i * 64) for i in range(10)]
        character = characterize(trace)
        assert character.burstiness == pytest.approx(0.5)

    def test_multi_stream_spreads_sags(self):
        # 1024 rows / 4 SAGs = 256 rows per SAG; one row spans 8 KiB of
        # address space, so the SAG stride is 2 MiB.
        trace = multi_stream_kernel(
            400, streams=4, gap=5, stream_spacing_bytes=(1 << 21) + 128,
        )
        cfg = fgnvm(4, 4)
        cfg.org.rows_per_bank = 1024
        character = characterize(trace, cfg.org)
        assert character.sag_spread > 0.9

    def test_empty_trace(self):
        character = characterize([])
        assert character.accesses == 0
        assert character.row_locality == 0.0
        assert character.burstiness == 0.0


class TestProfileFidelity:
    @pytest.mark.parametrize("name", list(PROFILES), ids=list(PROFILES))
    def test_generated_traces_hit_their_targets(self, name):
        profile = PROFILES[name]
        trace = generate_trace(profile, 3000)
        character = characterize(trace)
        assert fidelity_report(
            character, profile.mpki, profile.write_fraction
        ) == [], name

    def test_streaming_profiles_measure_more_row_local(self):
        streamer = characterize(generate_trace(PROFILES["libquantum"], 2000))
        chaser = characterize(generate_trace(PROFILES["mcf"], 2000))
        assert streamer.row_locality > chaser.row_locality


class TestFidelityReport:
    def character(self, mpki=20.0, writes=0.3):
        return TraceCharacter(
            accesses=100, mpki=mpki, write_fraction=writes,
            row_locality=0.5, footprint_lines=100, bank_spread=0.9,
            sag_spread=0.9, cd_spread=0.9, burstiness=0.2,
        )

    def test_clean_when_on_target(self):
        assert fidelity_report(self.character(), 20.0, 0.3) == []

    def test_flags_mpki_drift(self):
        problems = fidelity_report(self.character(mpki=40.0), 20.0, 0.3)
        assert any("mpki" in p for p in problems)

    def test_flags_write_drift(self):
        problems = fidelity_report(self.character(writes=0.5), 20.0, 0.3)
        assert any("write fraction" in p for p in problems)
