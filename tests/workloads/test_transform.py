"""Trace transformations."""

import pytest

from repro.memsys.request import OpType
from repro.workloads.record import TraceRecord, total_instructions
from repro.workloads.synthetic import stream_kernel
from repro.workloads.transform import (
    concat_traces,
    interleave_traces,
    offset_trace,
    scale_gaps,
    slice_trace,
)


class TestOffset:
    def test_shifts_every_address(self):
        trace = stream_kernel(10)
        moved = offset_trace(trace, 1 << 30)
        assert all(
            m.address == t.address + (1 << 30)
            for m, t in zip(moved, trace)
        )
        assert [m.gap for m in moved] == [t.gap for t in trace]

    def test_rejects_unaligned_or_negative(self):
        with pytest.raises(ValueError):
            offset_trace([], 10)
        with pytest.raises(ValueError):
            offset_trace([], -64)

    def test_disjoint_offsets_do_not_alias(self):
        a = offset_trace(stream_kernel(50), 0)
        b = offset_trace(stream_kernel(50), 1 << 30)
        assert not {r.address for r in a} & {r.address for r in b}


class TestSliceConcat:
    def test_slice_region(self):
        trace = stream_kernel(20)
        region = slice_trace(trace, 5, 10)
        assert region == trace[5:15]

    def test_slice_validation(self):
        with pytest.raises(ValueError):
            slice_trace([], -1, 5)
        with pytest.raises(ValueError):
            slice_trace([], 0, -5)

    def test_concat_preserves_order(self):
        a = stream_kernel(3)
        b = stream_kernel(2, start=1 << 20)
        merged = concat_traces(a, b)
        assert merged == a + b


class TestScaleGaps:
    def test_mean_is_exact_under_fractional_scaling(self):
        trace = [TraceRecord(3, OpType.READ, i * 64) for i in range(100)]
        scaled = scale_gaps(trace, 0.5)
        # 3 * 0.5 = 1.5: alternating 1/2 keeps the long-run mean exact.
        assert sum(r.gap for r in scaled) == pytest.approx(150, abs=1)

    def test_zero_factor_compresses(self):
        scaled = scale_gaps(stream_kernel(10, gap=7), 0.0)
        assert all(r.gap == 0 for r in scaled)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            scale_gaps([], -1.0)


class TestInterleave:
    def test_preserves_all_records(self):
        a = stream_kernel(30, gap=10)
        b = stream_kernel(20, gap=10, start=1 << 22)
        merged = interleave_traces([a, b], quantum_instructions=50)
        assert len(merged) == 50
        assert total_instructions(merged) == (
            total_instructions(a) + total_instructions(b)
        )

    def test_round_robin_alternates_regions(self):
        a = stream_kernel(20, gap=9)       # 10 instructions per record
        b = stream_kernel(20, gap=9, start=1 << 22)
        merged = interleave_traces([a, b], quantum_instructions=20)
        regions = [r.address >> 22 for r in merged[:8]]
        # Two records per quantum, alternating sources.
        assert regions == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_uneven_sources_drain_completely(self):
        a = stream_kernel(5, gap=1)
        b = stream_kernel(50, gap=1, start=1 << 22)
        merged = interleave_traces([a, b], quantum_instructions=4)
        assert len(merged) == 55

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            interleave_traces([[]], quantum_instructions=0)
