"""Profile-driven trace generation: determinism and statistics."""

import pytest

from repro.memsys.request import OpType
from repro.workloads.record import read_fraction, trace_mpki
from repro.workloads.spec_profiles import BenchmarkProfile, get_profile
from repro.workloads.tracegen import ProfileTraceGenerator, generate_trace


def profile(**overrides):
    base = dict(name="test", mpki=25.0, write_fraction=0.3, streams=4,
                p_seq=0.7, footprint_mib=16, gap_burstiness=0.2, seed=42)
    base.update(overrides)
    return BenchmarkProfile(**base)


class TestDeterminism:
    def test_same_profile_same_trace(self):
        first = generate_trace(profile(), 500)
        second = generate_trace(profile(), 500)
        assert first == second

    def test_different_seeds_differ(self):
        first = generate_trace(profile(seed=1), 500)
        second = generate_trace(profile(seed=2), 500)
        assert first != second

    def test_spec_profiles_are_reproducible(self):
        assert generate_trace(get_profile("mcf"), 100) == generate_trace(
            get_profile("mcf"), 100
        )


class TestStatisticalTargets:
    def test_write_fraction_tracks_profile(self):
        trace = generate_trace(profile(write_fraction=0.4), 4000)
        assert 1.0 - read_fraction(trace) == pytest.approx(0.4, abs=0.03)

    def test_mpki_tracks_profile(self):
        trace = generate_trace(profile(mpki=25.0), 4000)
        # Bursts pull realised MPKI above the geometric baseline a bit.
        assert trace_mpki(trace) == pytest.approx(25.0, rel=0.35)

    def test_streaming_profile_is_sequential(self):
        trace = generate_trace(profile(p_seq=1.0, streams=1), 1000)
        deltas = [
            b.address - a.address for a, b in zip(trace, trace[1:])
        ]
        assert all(d == 64 for d in deltas)

    def test_random_profile_jumps(self):
        trace = generate_trace(profile(p_seq=0.0, streams=1), 1000)
        deltas = [
            abs(b.address - a.address) for a, b in zip(trace, trace[1:])
        ]
        assert sum(1 for d in deltas if d != 64) > 900

    def test_addresses_stay_inside_footprint(self):
        footprint = 16 * 1024 * 1024
        trace = generate_trace(profile(footprint_mib=16), 2000)
        assert all(0 <= r.address < footprint for r in trace)

    def test_addresses_are_line_aligned(self):
        trace = generate_trace(profile(), 500)
        assert all(r.address % 64 == 0 for r in trace)


class TestGeneratorApi:
    def test_records_is_lazy_and_counted(self):
        gen = ProfileTraceGenerator(profile())
        records = list(gen.records(17))
        assert len(records) == 17

    def test_negative_count_rejected(self):
        gen = ProfileTraceGenerator(profile())
        with pytest.raises(ValueError):
            list(gen.records(-1))

    def test_zero_write_fraction_is_read_only(self):
        trace = generate_trace(profile(write_fraction=0.0), 500)
        assert all(r.op is OpType.READ for r in trace)
