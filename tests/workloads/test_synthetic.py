"""Synthetic micro-kernels: structure of each generated pattern."""

import pytest

from repro.memsys.request import OpType
from repro.workloads.synthetic import (
    copy_kernel,
    multi_stream_kernel,
    pointer_chase_kernel,
    random_kernel,
    stream_kernel,
    strided_kernel,
)


class TestStream:
    def test_sequential_reads(self):
        records = stream_kernel(10, gap=5, start=0x1000)
        assert len(records) == 10
        assert all(r.op is OpType.READ and r.gap == 5 for r in records)
        assert [r.address for r in records[:3]] == [0x1000, 0x1040, 0x1080]


class TestCopy:
    def test_alternates_read_write(self):
        records = copy_kernel(10, gap=4)
        assert [r.op for r in records[:4]] == [
            OpType.READ, OpType.WRITE, OpType.READ, OpType.WRITE
        ]
        # Writes land in the destination region.
        assert all(
            r.address >= 1 << 28 for r in records if r.op is OpType.WRITE
        )

    def test_half_are_writes(self):
        records = copy_kernel(20)
        writes = sum(1 for r in records if r.op is OpType.WRITE)
        assert writes == 10


class TestRandom:
    def test_deterministic_per_seed(self):
        assert random_kernel(50, seed=3) == random_kernel(50, seed=3)
        assert random_kernel(50, seed=3) != random_kernel(50, seed=4)

    def test_write_fraction(self):
        records = random_kernel(2000, write_fraction=0.5, seed=1)
        writes = sum(1 for r in records if r.op is OpType.WRITE)
        assert writes == pytest.approx(1000, rel=0.1)

    def test_footprint_respected(self):
        records = random_kernel(500, footprint_bytes=1 << 20)
        assert all(r.address < 1 << 20 for r in records)


class TestPointerChase:
    def test_single_dependent_stream(self):
        records = pointer_chase_kernel(100, gap=50)
        assert all(r.op is OpType.READ for r in records)
        assert all(r.gap == 50 for r in records)


class TestStrided:
    def test_stride_distance(self):
        records = strided_kernel(5, stride_lines=16)
        deltas = {
            b.address - a.address for a, b in zip(records, records[1:])
        }
        assert deltas == {16 * 64}

    def test_rejects_zero_stride(self):
        with pytest.raises(ValueError):
            strided_kernel(5, stride_lines=0)


class TestMultiStream:
    def test_round_robin_across_streams(self):
        records = multi_stream_kernel(8, streams=4, stream_spacing_bytes=1 << 20)
        regions = [r.address >> 20 for r in records]
        assert regions == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_each_stream_advances_sequentially(self):
        records = multi_stream_kernel(8, streams=2, stream_spacing_bytes=1 << 20)
        stream0 = [r.address for r in records if r.address < 1 << 20]
        assert stream0 == [0, 64, 128, 192]

    def test_rejects_zero_streams(self):
        with pytest.raises(ValueError):
            multi_stream_kernel(4, streams=0)
