"""Trace file I/O: round-trips and malformed-input handling."""

import io

import pytest

from repro.errors import TraceFormatError
from repro.memsys.request import OpType
from repro.workloads.record import TraceRecord
from repro.workloads.trace_io import (
    read_nvmain_trace,
    read_trace,
    trace_to_string,
    write_nvmain_trace,
    write_trace,
)


@pytest.fixture
def records():
    return [
        TraceRecord(10, OpType.READ, 0x1000),
        TraceRecord(0, OpType.WRITE, 0x2040),
        TraceRecord(250, OpType.READ, 0xdeadbeef40),
    ]


class TestNativeFormat:
    def test_roundtrip_through_file(self, records, tmp_path):
        path = tmp_path / "trace.txt"
        count = write_trace(records, path)
        assert count == 3
        assert read_trace(path) == records

    def test_roundtrip_through_stream(self, records):
        text = trace_to_string(records)
        assert read_trace(io.StringIO(text)) == records

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n10 R 0x40\n  # inline comment line\n0 W 0x80\n"
        parsed = read_trace(io.StringIO(text))
        assert len(parsed) == 2
        assert parsed[1].op is OpType.WRITE

    @pytest.mark.parametrize("line", [
        "10 R",                # too few fields
        "10 R 0x40 extra",     # too many fields
        "ten R 0x40",          # bad gap
        "10 X 0x40",           # bad op
        "10 R zz",             # bad address
    ])
    def test_malformed_lines_raise_with_line_number(self, line):
        with pytest.raises(TraceFormatError) as excinfo:
            read_trace(io.StringIO(line + "\n"))
        assert "line 1" in str(excinfo.value)


class TestNvmainFormat:
    def test_roundtrip_preserves_ops_and_addresses(self, records):
        buffer = io.StringIO()
        write_nvmain_trace(records, buffer, cycles_per_instruction=0.5)
        parsed = read_nvmain_trace(
            io.StringIO(buffer.getvalue()), cycles_per_instruction=0.5
        )
        assert [r.op for r in parsed] == [r.op for r in records]
        assert [r.address for r in parsed] == [r.address for r in records]

    def test_gaps_survive_approximately(self, records):
        buffer = io.StringIO()
        write_nvmain_trace(records, buffer, cycles_per_instruction=0.5)
        parsed = read_nvmain_trace(
            io.StringIO(buffer.getvalue()), cycles_per_instruction=0.5
        )
        for original, parsed_rec in zip(records, parsed):
            assert abs(parsed_rec.gap - original.gap) <= 2

    def test_cycles_monotonic_enforced(self):
        text = "100 R 0x40 0 0\n50 R 0x80 0 0\n"
        with pytest.raises(TraceFormatError):
            read_nvmain_trace(io.StringIO(text))

    def test_bad_cpi_rejected(self, records):
        with pytest.raises(TraceFormatError):
            write_nvmain_trace(records, io.StringIO(),
                               cycles_per_instruction=0)
        with pytest.raises(TraceFormatError):
            read_nvmain_trace(io.StringIO(""), cycles_per_instruction=-1)

    def test_format_shape(self, records):
        buffer = io.StringIO()
        write_nvmain_trace(records, buffer, thread_id=3)
        lines = buffer.getvalue().strip().splitlines()
        first = lines[0].split()
        assert len(first) == 5
        assert first[1] in ("R", "W")
        assert first[4] == "3"
