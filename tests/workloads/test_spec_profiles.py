"""SPEC2006-like profile definitions."""

import pytest

from repro.workloads.spec_profiles import (
    PROFILES,
    BenchmarkProfile,
    benchmark_names,
    get_profile,
)


class TestSuiteSelection:
    def test_every_profile_meets_the_mpki_cutoff(self):
        # The paper selects SPEC2006 workloads with LLC MPKI >= 10.
        for profile in PROFILES.values():
            assert profile.mpki >= 10.0, profile.name

    def test_suite_size_matches_figure(self):
        assert len(PROFILES) == 12

    def test_canonical_order_is_stable(self):
        assert benchmark_names() == list(PROFILES)

    def test_famous_benchmarks_present(self):
        for name in ("mcf", "lbm", "libquantum", "milc", "GemsFDTD"):
            assert name in PROFILES

    def test_seeds_are_unique(self):
        seeds = [p.seed for p in PROFILES.values()]
        assert len(seeds) == len(set(seeds))

    def test_behavioural_diversity(self):
        fractions = {p.write_fraction for p in PROFILES.values()}
        seqs = {p.p_seq for p in PROFILES.values()}
        assert len(fractions) > 5
        assert max(seqs) > 0.9 and min(seqs) < 0.3  # streamers + chasers


class TestProfileValidation:
    def test_mean_gap(self):
        profile = BenchmarkProfile("x", mpki=20.0, write_fraction=0.2,
                                   streams=2, p_seq=0.5, footprint_mib=64)
        assert profile.mean_gap == pytest.approx(49.0)

    @pytest.mark.parametrize("kwargs", [
        dict(mpki=0.0),
        dict(write_fraction=1.0),
        dict(write_fraction=-0.1),
        dict(streams=0),
        dict(p_seq=1.5),
        dict(gap_burstiness=1.0),
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        base = dict(name="x", mpki=20.0, write_fraction=0.2, streams=2,
                    p_seq=0.5, footprint_mib=64)
        base.update(kwargs)
        with pytest.raises(ValueError):
            BenchmarkProfile(**base)


class TestLookup:
    def test_get_profile(self):
        assert get_profile("mcf").name == "mcf"

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError) as excinfo:
            get_profile("quake3")
        assert "mcf" in str(excinfo.value)
