"""Unit tests for the packed struct-of-arrays trace pipeline."""

import gc
import io

import pytest

from repro.errors import TraceFormatError
from repro.memsys.request import OpType
from repro.workloads.packed import (
    OP_READ,
    OP_WRITE,
    PACKED_MAGIC,
    PackedTrace,
    RecordView,
    SharedTraceRef,
    TraceCache,
    attach_failures,
    clear_trace_sources,
    install_trace_sources,
    resolve_trace,
    trace_key,
)
from repro.workloads.record import TraceRecord
from repro.workloads.spec_profiles import get_profile
from repro.workloads.trace_io import read_trace, write_trace
from repro.workloads.tracegen import generate_packed_trace


def sample_trace():
    trace = PackedTrace()
    trace.append(0, OP_READ, 0x1000)
    trace.append(3, OP_WRITE, 0x2040)
    trace.append(17, OP_READ, 0)
    return trace


def sample_records():
    return [
        TraceRecord(0, OpType.READ, 0x1000),
        TraceRecord(3, OpType.WRITE, 0x2040),
        TraceRecord(17, OpType.READ, 0),
    ]


class TestPackedTrace:
    def test_append_and_record_access(self):
        trace = sample_trace()
        assert len(trace) == 3
        assert trace.record(1) == TraceRecord(3, OpType.WRITE, 0x2040)
        assert list(trace) == sample_records()
        assert trace.to_records() == sample_records()

    def test_from_records_round_trip(self):
        trace = PackedTrace.from_records(sample_records())
        assert trace.to_records() == sample_records()

    def test_column_reductions(self):
        trace = sample_trace()
        assert trace.total_instructions() == 0 + 3 + 17 + 3
        assert trace.read_count() == 2

    def test_mismatched_columns_rejected(self):
        from array import array

        with pytest.raises(TraceFormatError, match="disagree"):
            PackedTrace(array("q", [1]), array("q"), array("q"))


class TestRecordView:
    def test_list_likeness(self):
        view = sample_trace().view()
        records = sample_records()
        assert len(view) == 3
        assert list(view) == records
        assert view[0] == records[0]
        assert view[-1] == records[-1]
        assert view[1:] == records[1:]
        assert view == records
        assert records == list(view)
        with pytest.raises(IndexError):
            view[3]

    def test_equality_both_directions(self):
        a = sample_trace().view()
        b = sample_trace().view()
        assert a == b
        assert a == sample_records()
        assert a != sample_records()[:-1]
        assert a != RecordView(PackedTrace())

    def test_concatenation_yields_lists(self):
        view = sample_trace().view()
        assert view + view == sample_records() + sample_records()
        assert sample_records() + view == sample_records() * 2

    def test_unhashable_like_a_list(self):
        with pytest.raises(TypeError):
            hash(sample_trace().view())


class TestBlobFormat:
    def test_round_trip_byte_identical(self):
        trace = sample_trace()
        blob = trace.to_bytes()
        assert blob.startswith(PACKED_MAGIC)
        decoded = PackedTrace.from_bytes(blob)
        assert decoded.to_records() == trace.to_records()
        assert decoded.to_bytes() == blob

    def test_empty_trace_round_trips(self):
        blob = PackedTrace().to_bytes()
        assert len(PackedTrace.from_bytes(blob)) == 0

    def test_bad_magic_rejected(self):
        with pytest.raises(TraceFormatError, match="magic"):
            PackedTrace.from_bytes(b"not-a-trace" * 10)

    def test_truncated_blob_rejected(self):
        blob = sample_trace().to_bytes()
        with pytest.raises(TraceFormatError):
            PackedTrace.from_bytes(blob[: len(blob) - 4])

    def test_flipped_payload_byte_rejected(self):
        blob = bytearray(sample_trace().to_bytes())
        blob[-1] ^= 0xFF
        with pytest.raises(TraceFormatError, match="checksum"):
            PackedTrace.from_bytes(bytes(blob))

    def test_from_buffer_zero_copy_with_oversized_carrier(self):
        # Shared-memory segments are page-rounded: the carrier is
        # larger than the blob and the header must bound the payload.
        trace = sample_trace()
        blob = trace.to_bytes()
        carrier = bytearray(blob) + bytearray(4096 - len(blob) % 4096)
        mapped = PackedTrace.from_buffer(memoryview(carrier))
        assert mapped.to_records() == trace.to_records()
        mapped.close()

    def test_close_releases_views(self):
        carrier = bytearray(sample_trace().to_bytes())
        mapped = PackedTrace.from_buffer(memoryview(carrier))
        mapped.close()
        del mapped
        carrier += b"x"  # raises BufferError if a view is still held


class TestTraceKey:
    def test_stable_and_sensitive(self):
        profile = get_profile("mcf")
        key = trace_key(profile, 1000)
        assert key == trace_key(profile, 1000)
        assert key != trace_key(profile, 1001)
        assert key != trace_key(get_profile("milc"), 1000)
        assert key != trace_key(profile, 1000, line_bytes=128)
        import dataclasses

        reseeded = dataclasses.replace(profile, seed=profile.seed + 1)
        assert key != trace_key(reseeded, 1000)


class TestTraceCache:
    def test_put_get_round_trip(self, tmp_path):
        cache = TraceCache(tmp_path)
        trace = generate_packed_trace(get_profile("mcf"), 200)
        key = trace_key(get_profile("mcf"), 200)
        assert cache.get(key) is None
        assert cache.misses == 1
        assert cache.put(key, trace) > 0
        got = cache.get(key)
        assert got is not None
        assert got.to_records() == trace.to_records()
        assert cache.hits == 1
        assert len(cache) == 1

    def test_corrupt_blob_quarantined(self, tmp_path):
        cache = TraceCache(tmp_path)
        key = trace_key(get_profile("mcf"), 50)
        cache.put(key, generate_packed_trace(get_profile("mcf"), 50))
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:-8] + b"corrupted")
        assert cache.get(key) is None
        assert cache.corrupt == 1
        assert not path.exists()
        assert list((tmp_path / "quarantine").glob("*.corrupt"))


class TestTraceSourceRegistry:
    @pytest.fixture(autouse=True)
    def clean_registry(self):
        clear_trace_sources()
        yield
        clear_trace_sources()

    def test_in_process_install_served_without_regeneration(self):
        profile = get_profile("mcf")
        trace = generate_packed_trace(profile, 100)
        install_trace_sources(local={trace_key(profile, 100): trace})
        assert resolve_trace(profile, 100) is trace

    def test_resolution_falls_back_to_generation(self):
        profile = get_profile("milc")
        resolved = resolve_trace(profile, 80)
        expected = generate_packed_trace(profile, 80)
        assert resolved.to_records() == expected.to_records()

    def test_dead_shared_ref_degrades_bit_identically(self):
        profile = get_profile("mcf")
        key = trace_key(profile, 60)
        before = attach_failures()
        install_trace_sources(shared=[
            SharedTraceRef(key=key, name="repro-test-no-such-segment",
                           nbytes=64)
        ])
        resolved = resolve_trace(profile, 60)
        assert attach_failures() == before + 1
        assert resolved.to_records() == (
            generate_packed_trace(profile, 60).to_records()
        )

    def test_clear_drops_installed_sources(self):
        profile = get_profile("mcf")
        trace = generate_packed_trace(profile, 40)
        install_trace_sources(local={trace_key(profile, 40): trace})
        clear_trace_sources()
        assert resolve_trace(profile, 40) is not trace


class TestReaderAllocation:
    def test_read_trace_does_not_materialise_records(self):
        # The regression the packed reader fixes: a large file used to
        # become a List[TraceRecord].  Streaming into columns must leave
        # zero live TraceRecord objects until the view is indexed.
        lines = ["# header"]
        for i in range(20_000):
            op = "W" if i % 7 == 0 else "R"
            lines.append(f"{i % 11} {op} 0x{i * 64:x}")
        text = "\n".join(lines)

        gc.collect()
        trace = read_trace(io.StringIO(text))
        gc.collect()
        live = sum(
            1 for obj in gc.get_objects() if isinstance(obj, TraceRecord)
        )
        assert len(trace) == 20_000
        assert live == 0
        # Touching one element materialises exactly that record.
        assert trace[123].address == 123 * 64
