"""Trace records and aggregate metrics."""

import pytest

from repro.memsys.request import OpType
from repro.workloads.record import (
    TraceRecord,
    read_fraction,
    total_instructions,
    trace_mpki,
)


class TestTraceRecord:
    def test_fields_are_frozen(self):
        record = TraceRecord(5, OpType.READ, 0x40)
        with pytest.raises(AttributeError):
            record.gap = 10

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, OpType.READ, 0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            TraceRecord(0, OpType.READ, -64)


class TestAggregates:
    def trace(self):
        return [
            TraceRecord(9, OpType.READ, 0x00),
            TraceRecord(9, OpType.WRITE, 0x40),
            TraceRecord(9, OpType.READ, 0x80),
            TraceRecord(9, OpType.READ, 0xc0),
        ]

    def test_total_instructions_counts_accesses(self):
        assert total_instructions(self.trace()) == 40

    def test_read_fraction(self):
        assert read_fraction(self.trace()) == pytest.approx(0.75)
        assert read_fraction([]) == 0.0

    def test_trace_mpki(self):
        assert trace_mpki(self.trace()) == pytest.approx(100.0)
        assert trace_mpki([]) == 0.0
