"""Reorder-buffer fill and in-order retirement."""

import pytest

from repro.cpu.rob import ReorderBuffer
from repro.memsys.request import MemRequest, OpType


def pending_load():
    return MemRequest(OpType.READ, 0x40)


def done_load():
    req = pending_load()
    req.mark_queued(0)
    req.mark_issued(0, 10, "row_miss")
    req.mark_completed()
    return req


class TestFill:
    def test_instruction_chunks_merge(self):
        rob = ReorderBuffer(100)
        assert rob.push_instructions(30) == 30
        assert rob.push_instructions(20) == 20
        assert rob.occupancy == 50

    def test_capacity_clips_fill(self):
        rob = ReorderBuffer(10)
        assert rob.push_instructions(25) == 10
        assert rob.push_instructions(5) == 0
        assert rob.free_slots == 0

    def test_load_occupies_one_slot(self):
        rob = ReorderBuffer(2)
        assert rob.push_load(pending_load())
        assert rob.push_load(pending_load())
        assert not rob.push_load(pending_load())

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            ReorderBuffer(0)


class TestRetire:
    def test_retires_up_to_budget(self):
        rob = ReorderBuffer(100)
        rob.push_instructions(50)
        assert rob.retire(20) == 20
        assert rob.occupancy == 30

    def test_pending_load_blocks_head(self):
        rob = ReorderBuffer(100)
        rob.push_instructions(5)
        rob.push_load(pending_load())
        rob.push_instructions(5)
        assert rob.retire(100) == 5
        assert rob.head_blocked()
        assert rob.occupancy == 6

    def test_completed_load_retires(self):
        rob = ReorderBuffer(100)
        load = done_load()
        rob.push_load(load)
        rob.push_instructions(3)
        assert rob.retire(100) == 4
        assert rob.is_empty

    def test_load_completion_unblocks(self):
        rob = ReorderBuffer(100)
        load = pending_load()
        rob.push_load(load)
        assert rob.retire(10) == 0
        load.mark_queued(0)
        load.mark_issued(0, 5, "row_hit")
        load.mark_completed()
        assert rob.retire(10) == 1

    def test_in_order_across_mixed_entries(self):
        rob = ReorderBuffer(100)
        rob.push_instructions(2)
        first = done_load()
        rob.push_load(first)
        blocked = pending_load()
        rob.push_load(blocked)
        rob.push_instructions(4)
        # 2 instructions + completed load retire; blocked load stops us.
        assert rob.retire(100) == 3
        assert rob.head_request() is blocked


class TestQueries:
    def test_head_blocked_false_for_instructions(self):
        rob = ReorderBuffer(10)
        rob.push_instructions(3)
        assert not rob.head_blocked()
        assert rob.head_request() is None

    def test_empty_rob(self):
        rob = ReorderBuffer(10)
        assert rob.is_empty
        assert not rob.head_blocked()
        assert rob.retire(10) == 0
