"""Trace-replay CPU: fetch/retire mechanics and IPC accounting."""

import pytest

from repro.config import baseline_nvm
from repro.cpu.trace_cpu import TraceCpu
from repro.memsys.controller import MemoryController
from repro.memsys.request import OpType
from repro.memsys.stats import StatsCollector
from repro.workloads.record import TraceRecord


def build(trace, cfg=None):
    cfg = cfg or baseline_nvm()
    cfg.org.rows_per_bank = 256
    stats = StatsCollector()
    controller = MemoryController(cfg, stats)
    cpu = TraceCpu(cfg.cpu, trace, controller, stats, cfg.timing.tck_ns)
    return cpu, controller, stats, cfg


def run(cpu, controller, stats, max_cycles=100_000):
    """Simple coupled loop (the Simulator adds event skipping on top)."""
    for cycle in range(max_cycles):
        done = controller.tick(cycle)
        reads = sum(1 for r in done if r.is_read)
        if reads:
            cpu.on_read_completed(reads)
        cpu.tick(cycle)
        if cpu.done():
            controller.begin_flush()
            if not controller.busy():
                stats.cycles = cycle + 1
                return cycle + 1
    raise AssertionError("run did not finish")


class TestPureCompute:
    def test_compute_only_trace_retires_at_peak(self):
        # One memory access after 3199 instructions, then nothing.
        trace = [TraceRecord(3199, OpType.READ, 0x40)]
        cpu, controller, stats, cfg = build(trace)
        cycles = run(cpu, controller, stats)
        ratio = cfg.cpu.cpu_cycles_per_mem_cycle(cfg.timing.tck_ns)
        ipc = stats.ipc(ratio)
        # 3200 instructions at width 4 with one ~52-cycle miss at the
        # end: IPC must be close to (but below) the peak width of 4.
        assert 2.0 < ipc <= 4.0
        assert stats.instructions == 3200
        assert cycles < 3200


class TestMemoryBound:
    def test_dependent_misses_serialise(self):
        # Gap-0 loads to distinct rows of one bank: each waits ~52cy.
        trace = [
            TraceRecord(0, OpType.READ, i * 1024 * 8 * 8)
            for i in range(20)
        ]
        cpu, controller, stats, _ = build(trace)
        cycles = run(cpu, controller, stats)
        assert cycles > 20 * 40  # strongly memory-bound

    def test_mshr_limit_caps_outstanding_reads(self):
        cfg = baseline_nvm()
        cfg.cpu.mshr_entries = 2
        trace = [TraceRecord(0, OpType.READ, i * 0x100000) for i in range(8)]
        cpu, controller, stats, _ = build(trace, cfg)
        controller.tick(0)
        cpu.tick(0)
        assert cpu.loads_issued == 2  # capped by MSHRs, not the queue

    def test_rob_limit_caps_fetch(self):
        cfg = baseline_nvm()
        cfg.cpu.rob_entries = 8
        trace = [TraceRecord(6, OpType.READ, 0x40),
                 TraceRecord(50, OpType.READ, 0x80)]
        cpu, controller, stats, _ = build(trace, cfg)
        controller.tick(0)
        cpu.tick(0)
        # 6 gap instructions + 1 load fill 7 of 8 slots; the second
        # record's 50-instruction gap cannot fit past slot 8.
        assert cpu.loads_issued == 1


class TestStores:
    def test_stores_do_not_block_retirement(self):
        trace = [TraceRecord(10, OpType.WRITE, i * 64) for i in range(10)]
        cpu, controller, stats, _ = build(trace)
        run(cpu, controller, stats)
        assert stats.instructions == 10 * 11
        assert cpu.stores_issued == 10

    def test_full_write_queue_stalls_fetch(self):
        cfg = baseline_nvm()
        trace = [TraceRecord(0, OpType.WRITE, i * 64) for i in range(100)]
        cpu, controller, stats, _ = build(trace, cfg)
        cpu.tick(0)
        assert cpu.stores_issued <= cfg.controller.write_queue_entries


class TestProgressQueries:
    def test_done_lifecycle(self):
        trace = [TraceRecord(0, OpType.READ, 0x40)]
        cpu, controller, stats, _ = build(trace)
        assert not cpu.done()
        run(cpu, controller, stats)
        assert cpu.done()
        assert cpu.trace_done

    def test_fully_stalled_on_blocked_head(self):
        trace = [TraceRecord(0, OpType.READ, 0x40)]
        cpu, controller, stats, _ = build(trace)
        cpu.tick(0)  # issues the load, head now blocked
        assert cpu.fully_stalled()

    def test_not_stalled_while_instructions_available(self):
        trace = [TraceRecord(0, OpType.READ, 0x40),
                 TraceRecord(500, OpType.READ, 0x80)]
        cpu, controller, stats, _ = build(trace)
        cpu.tick(0)
        # Head load pending but the gap still feeds the front end.
        assert not cpu.fully_stalled()

    def test_mshr_underflow_detected(self):
        trace = [TraceRecord(0, OpType.READ, 0x40)]
        cpu, _, _, _ = build(trace)
        with pytest.raises(ValueError):
            cpu.on_read_completed(1)
