"""Last-level cache filter: hits, LRU eviction, writebacks, filtering."""

import pytest

from repro.cpu.llc import LastLevelCache
from repro.memsys.request import OpType
from repro.workloads.record import TraceRecord


def tiny_cache(ways=2, sets=2):
    return LastLevelCache(size_bytes=ways * sets * 64, ways=ways)


class TestAccess:
    def test_first_touch_misses_then_hits(self):
        cache = tiny_cache()
        assert not cache.access(0x40, False).hit
        assert cache.access(0x40, False).hit
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_lru_eviction_order(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.access(0x00, False)
        cache.access(0x40, False)
        cache.access(0x00, False)          # refresh line 0
        result = cache.access(0x80, False)  # evicts line 0x40 (LRU)
        assert not result.hit
        assert cache.access(0x00, False).hit
        assert not cache.access(0x40, False).hit

    def test_dirty_eviction_produces_writeback(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0x00, True)   # dirty
        result = cache.access(0x40, False)
        assert result.writeback_address == 0x00
        assert cache.stats.writebacks == 1

    def test_clean_eviction_is_silent(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0x00, False)
        result = cache.access(0x40, False)
        assert result.writeback_address is None

    def test_write_hit_marks_dirty(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.access(0x00, False)
        cache.access(0x00, True)   # dirtied by the hit
        result = cache.access(0x40, False)
        assert result.writeback_address == 0x00

    def test_sets_are_independent(self):
        cache = tiny_cache(ways=1, sets=2)
        cache.access(0x00, False)   # set 0
        cache.access(0x40, False)   # set 1
        assert cache.access(0x00, False).hit
        assert cache.resident_lines() == 2


class TestGeometryValidation:
    def test_rejects_bad_line_size(self):
        with pytest.raises(ValueError):
            LastLevelCache(size_bytes=1024, ways=2, line_bytes=48)

    def test_rejects_non_dividing_size(self):
        with pytest.raises(ValueError):
            LastLevelCache(size_bytes=1000, ways=2)

    def test_rejects_non_power_sets(self):
        with pytest.raises(ValueError):
            LastLevelCache(size_bytes=3 * 2 * 64, ways=2)


class TestFilterTrace:
    def test_hits_are_absorbed_into_gaps(self):
        cache = tiny_cache(ways=2, sets=2)
        raw = [
            TraceRecord(10, OpType.READ, 0x40),
            TraceRecord(10, OpType.READ, 0x40),  # hit
            TraceRecord(10, OpType.READ, 0x80),
        ]
        filtered = list(cache.filter_trace(raw))
        assert len(filtered) == 2
        assert filtered[0].gap == 10
        # The hit contributes its gap + itself to the next miss's gap.
        assert filtered[1].gap == 21

    def test_all_filtered_records_start_as_reads_or_writebacks(self):
        cache = tiny_cache(ways=1, sets=1)
        raw = [TraceRecord(0, OpType.WRITE, i * 64) for i in range(4)]
        filtered = list(cache.filter_trace(raw))
        fills = [r for r in filtered if r.op is OpType.READ]
        writebacks = [r for r in filtered if r.op is OpType.WRITE]
        assert len(fills) == 4          # every miss fetches the line
        assert len(writebacks) == 3     # all but the resident line drain

    def test_mpki_reflects_miss_rate(self):
        cache = tiny_cache(ways=2, sets=2)
        raw = [TraceRecord(99, OpType.READ, (i % 2) * 64) for i in range(100)]
        filtered = list(cache.filter_trace(raw))
        assert cache.stats.misses == 2
        assert cache.stats.miss_rate == pytest.approx(0.02)
        assert cache.stats.mpki(10_000) == pytest.approx(0.2)
        assert len(filtered) == 2
