"""Shared fixtures: small configs, banks, and traces for fast tests."""

from __future__ import annotations

import pytest

from repro.config import (
    SystemConfig,
    baseline_nvm,
    fgnvm,
    fgnvm_multi_issue,
    many_banks,
)
from repro.config.params import TimingParams
from repro.memsys.address import AddressMapper
from repro.memsys.request import MemRequest, OpType
from repro.memsys.stats import StatsCollector
from repro.workloads.record import TraceRecord


def small_org(config: SystemConfig) -> SystemConfig:
    """Shrink a preset for unit tests (fewer rows, same semantics)."""
    config.org.rows_per_bank = 256
    config.sim.max_cycles = 5_000_000
    return config


@pytest.fixture
def baseline_config() -> SystemConfig:
    return small_org(baseline_nvm())


@pytest.fixture
def fgnvm_config() -> SystemConfig:
    return small_org(fgnvm(4, 4))


@pytest.fixture
def fgnvm82_config() -> SystemConfig:
    return small_org(fgnvm(8, 2))


@pytest.fixture
def many_banks_config() -> SystemConfig:
    return small_org(many_banks(4, 4))


@pytest.fixture
def multi_issue_config() -> SystemConfig:
    return small_org(fgnvm_multi_issue(4, 4))


@pytest.fixture
def timing_cycles():
    return TimingParams().cycles()


@pytest.fixture
def stats() -> StatsCollector:
    return StatsCollector()


def make_read(mapper: AddressMapper, bank=0, row=0, col=0) -> MemRequest:
    """A decoded read request at explicit coordinates."""
    address = mapper.encode(bank=bank, row=row, col=col)
    req = MemRequest(OpType.READ, address)
    req.decoded = mapper.decode(address)
    return req


def make_write(mapper: AddressMapper, bank=0, row=0, col=0) -> MemRequest:
    """A decoded write request at explicit coordinates."""
    address = mapper.encode(bank=bank, row=row, col=col)
    req = MemRequest(OpType.WRITE, address)
    req.decoded = mapper.decode(address)
    return req


def flat_trace(count: int, gap: int = 10, stride: int = 64,
               op: OpType = OpType.READ):
    """A simple sequential trace of ``count`` records."""
    return [TraceRecord(gap, op, i * stride) for i in range(count)]
