"""Table 1 and Table 2 regenerators reproduce the paper's values."""

from repro.analysis.table1 import (
    PAPER_VALUES,
    check_table1,
    render_table1,
    run_table1,
)
from repro.analysis.table2 import check_table2, configured_rows, render_table2


class TestTable1:
    def test_no_mismatches_against_paper(self):
        assert check_table1(run_table1()) == []

    def test_measured_keys_cover_paper_rows(self):
        measured = run_table1().measured()
        assert set(measured) == set(PAPER_VALUES)

    def test_render_mentions_each_component(self):
        text = render_table1(run_table1())
        for label in ("Row decoder", "Row latches", "CSL latches",
                      "LY-SEL", "Total"):
            assert label in text

    def test_decoder_split_is_reported_negligible(self):
        result = run_table1()
        assert result.decoder_overhead_avg < 0.05
        assert result.decoder_overhead_max < 0.05

    def test_check_flags_a_wrong_model(self):
        from repro.core.area import AreaModel
        bogus = run_table1(AreaModel(row_latch_um2_per_bit=1000.0))
        assert check_table1(bogus)


class TestTable2:
    def test_configured_matches_paper(self):
        assert check_table2() == []

    def test_render_has_three_columns(self):
        text = render_table2()
        assert "configured" in text and "paper" in text
        assert "tWP" in text and "150 ns" in text

    def test_configured_rows_complete(self):
        rows = configured_rows()
        assert len(rows) == 15
