"""Figure 4/5 regenerators at reduced scale: structure and shape.

Full-scale figure runs live in ``benchmarks/``; here a 3-benchmark,
short-trace subset checks the machinery and the headline shape fast.
"""

import pytest

from repro.analysis.calibration import render_headline, run_headline
from repro.analysis.figure4 import (
    SERIES,
    check_figure4_shape,
    render_figure4,
    run_figure4,
)
from repro.analysis.figure5 import (
    check_figure5_shape,
    render_figure5,
    run_figure5,
)
from repro.sim.experiment import ExperimentCache

BENCHES = ["mcf", "lbm", "sphinx3"]
REQUESTS = 1200


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache()


@pytest.fixture(scope="module")
def fig4(cache):
    return run_figure4(BENCHES, REQUESTS, cache)


@pytest.fixture(scope="module")
def fig5(cache):
    return run_figure5(BENCHES, REQUESTS, cache)


class TestFigure4:
    def test_all_series_present(self, fig4):
        for bench in BENCHES:
            assert set(fig4.speedups[bench]) == set(SERIES)

    def test_shape_checks_pass(self, fig4):
        assert check_figure4_shape(fig4) == []

    def test_gmean_row_added(self, fig4):
        rows = fig4.rows()
        assert "gmean" in rows
        assert rows["gmean"]["fgnvm"] == pytest.approx(
            fig4.gmean("fgnvm")
        )

    def test_fgnvm_beats_baseline_on_memory_bound(self, fig4):
        assert fig4.speedups["mcf"]["fgnvm"] > 1.2

    def test_render(self, fig4):
        text = render_figure4(fig4)
        assert "Figure 4" in text and "gmean" in text


class TestFigure5:
    def test_shape_checks_pass(self, fig5):
        assert check_figure5_shape(fig5) == []

    def test_energy_monotone_in_cds(self, fig5):
        for bench in BENCHES:
            row = fig5.relative_energy[bench]
            assert row["8x2"] > row["8x8"] > row["8x32"] * 0.999

    def test_perfect_is_lower_bound(self, fig5):
        for bench in BENCHES:
            row = fig5.relative_energy[bench]
            assert row["8x32"] >= row["8x32-perfect"] - 1e-9

    def test_render(self, fig5):
        text = render_figure5(fig5)
        assert "Figure 5" in text and "average" in text


class TestHeadline:
    def test_headline_aggregates(self, cache):
        result = run_headline(REQUESTS, BENCHES, cache)
        assert result.combined_speedup > 1.2
        assert 0.4 < result.best_energy_reduction < 0.9
        best, worst = result.area_band
        assert best < 0.1
        assert worst == pytest.approx(0.36, rel=0.1)
        text = render_headline(result)
        assert "56.5%" in text and "73%" in text
