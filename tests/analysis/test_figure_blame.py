"""Blame figure at reduced scale: structure, shape, and determinism.

The acceptance surface for the blame decomposition ( ``repro blame`` /
``figure-blame``): per-(benchmark, policy) reports whose cause shares
are structurally sound, and the paper's causal claim — FgNVM's win is
the conflict blame collapsing — measurable on the default workloads.
"""

import pytest

from repro.analysis.figure_blame import (
    CONFLICT_CAUSES,
    SERIES,
    check_figure_blame_shape,
    conflict_share,
    render_figure_blame,
    run_figure_blame,
)
from repro.analysis.figure_policies import DEFAULT_BENCHMARKS
from repro.obs.trace import BLAME_CAUSES

REQUESTS = 600
SAMPLE = 2


@pytest.fixture(scope="module")
def fig():
    return run_figure_blame(
        list(DEFAULT_BENCHMARKS), REQUESTS, sample_every=SAMPLE,
        keep_spans=True,
    )


class TestFigureBlame:
    def test_all_cells_present(self, fig):
        assert set(fig.reports) == set(DEFAULT_BENCHMARKS)
        for bench in DEFAULT_BENCHMARKS:
            assert set(fig.reports[bench]) == set(SERIES)

    def test_shape_checks_pass(self, fig):
        assert check_figure_blame_shape(fig) == []

    def test_reports_are_structurally_sound(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            for series in SERIES:
                report = fig.reports[bench][series]
                assert report["spans"] > 0
                assert report["unattributed_cycles"] == 0
                assert set(report["blame_cycles"]) <= set(BLAME_CAUSES)
                assert sum(report["blame_share"].values()) == pytest.approx(
                    1.0, abs=0.01
                )

    def test_fgnvm_collapses_conflict_blame(self, fig):
        """The paper's mechanism, as blame: 2D subdivision removes
        tile conflicts, so FgNVM's conflict share drops well below
        the baseline bank's on both workload extremes."""
        for bench in DEFAULT_BENCHMARKS:
            row = fig.reports[bench]
            assert conflict_share(row["fgnvm"]) < conflict_share(
                row["baseline"]
            )

    def test_organisations_annotated(self, fig):
        assert fig.organisations == {
            "baseline": "1x1", "fgnvm": "8x2", "palp": "8x2",
            "salp": "8x1",
        }

    def test_spans_kept_and_sound(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            for series in SERIES:
                spans = fig.spans[(bench, series)]
                assert len(spans) == fig.reports[bench][series]["spans"]
                assert all(span.check() == [] for span in spans)

    def test_jobs_record_provenance(self, fig):
        for key, (wall_s, cycles, instructions) in fig.jobs.items():
            assert wall_s > 0
            assert cycles > 0
            assert instructions > 0

    def test_render_contains_panels_and_causes(self, fig):
        text = render_figure_blame(fig)
        assert "conflict-blame share" in text
        assert "p95 latency" in text
        for series in SERIES:
            assert series in text
        for cause in CONFLICT_CAUSES:
            assert cause in text

    def test_same_seeding_reproduces_reports(self, fig):
        """The config-digest-derived sampling seed makes the whole
        figure deterministic: a re-run produces identical reports."""
        again = run_figure_blame(["mcf"], REQUESTS, sample_every=SAMPLE)
        assert again.reports["mcf"] == fig.reports["mcf"]
