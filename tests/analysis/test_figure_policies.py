"""Policy-zoo figure at reduced scale: structure, shape, and caching.

The acceptance surface for the policy registry's analysis layer: the
(benchmark x policy) grid runs through the cached parallel engine and
the qualitative shape claims (FgNVM wins, PALP tracks it, full-row
SALP cannot touch its energy) hold on the default workload pair.
"""

import pytest

from repro.analysis.figure_policies import (
    DEFAULT_BENCHMARKS,
    SERIES,
    check_figure_policies_shape,
    figure_policies_configs,
    render_figure_policies,
    run_figure_policies,
)
from repro.sim.experiment import ExperimentCache

REQUESTS = 800


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache()


@pytest.fixture(scope="module")
def fig(cache):
    return run_figure_policies(list(DEFAULT_BENCHMARKS), REQUESTS, cache)


class TestFigurePolicies:
    def test_all_series_present(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            assert set(fig.speedups[bench]) == set(SERIES)
            assert set(fig.relative_energy[bench]) == set(SERIES)

    def test_shape_checks_pass(self, fig):
        assert check_figure_policies_shape(fig) == []

    def test_summary_rows_added(self, fig):
        assert "gmean" in fig.speedup_rows()
        assert "average" in fig.energy_rows()

    def test_salp_cannot_match_fgnvm_energy(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            row = fig.relative_energy[bench]
            assert row["salp"] > row["fgnvm"]

    def test_render_contains_both_panels(self, fig):
        text = render_figure_policies(fig)
        assert "IPC speedup" in text
        assert "Energy relative to baseline" in text
        for series in SERIES:
            assert series in text

    def test_configs_cover_expected_systems(self):
        configs = figure_policies_configs()
        assert set(configs) == {"baseline", "fgnvm", "palp", "salp"}
        assert configs["palp"].controller.policy == "palp"
        assert configs["salp"].org.column_divisions == 1

    def test_grid_is_fully_cached(self, cache, fig):
        """One run() per (config, bench) cell — re-running the figure
        must hit the cache for every cell, not simulate."""
        before = len(cache)
        again = run_figure_policies(list(DEFAULT_BENCHMARKS), REQUESTS,
                                    cache)
        assert len(cache) == before
        assert again.speedups == fig.speedups
        assert again.relative_energy == fig.relative_energy
