"""CSV export of figure/table series."""

import csv
import io

import pytest

from repro.analysis.export import (
    figure4_csv,
    figure5_csv,
    sweep_csv,
    table1_csv,
)
from repro.analysis.figure4 import run_figure4
from repro.analysis.figure5 import run_figure5
from repro.analysis.table1 import run_table1
from repro.config import fgnvm
from repro.sim.experiment import ExperimentCache
from repro.sim.sweeps import parameter_sweep

BENCHES = ["sphinx3"]
REQUESTS = 500


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache()


def parse(buffer):
    return list(csv.reader(io.StringIO(buffer.getvalue())))


class TestFigureExports:
    def test_figure4_csv_shape(self, cache):
        result = run_figure4(BENCHES, REQUESTS, cache)
        buffer = io.StringIO()
        rows = figure4_csv(result, buffer)
        parsed = parse(buffer)
        assert parsed[0] == ["benchmark", "fgnvm", "128-banks",
                            "fgnvm-multi-issue"]
        assert rows == 2  # sphinx3 + gmean
        assert parsed[1][0] == "sphinx3"
        assert float(parsed[1][1]) > 0

    def test_figure5_csv_shape(self, cache):
        result = run_figure5(BENCHES, REQUESTS, cache)
        buffer = io.StringIO()
        rows = figure5_csv(result, buffer)
        parsed = parse(buffer)
        assert "8x32-perfect" in parsed[0]
        assert rows == 2  # sphinx3 + average
        assert 0 < float(parsed[1][1]) < 1

    def test_file_target(self, cache, tmp_path):
        result = run_figure4(BENCHES, REQUESTS, cache)
        path = tmp_path / "fig4.csv"
        figure4_csv(result, path)
        assert path.read_text().startswith("benchmark,")


class TestTableAndSweepExports:
    def test_table1_csv_matches_paper_columns(self):
        buffer = io.StringIO()
        rows = table1_csv(run_table1(), buffer)
        parsed = parse(buffer)
        assert parsed[0] == ["component", "model_avg", "paper_avg",
                             "model_max", "paper_max"]
        assert rows == 5
        by_name = {row[0]: row for row in parsed[1:]}
        assert float(by_name["csl_latches_um2"][1]) == pytest.approx(636.3)

    def test_sweep_csv(self):
        cfg = fgnvm(8, 2)
        cfg.org.rows_per_bank = 512
        sweep = parameter_sweep(
            cfg, "cpu.rob_entries", [64, 128], "sphinx3", requests=300
        )
        buffer = io.StringIO()
        rows = sweep_csv(sweep, buffer)
        parsed = parse(buffer)
        assert rows == 2
        assert parsed[1][0] == "cpu.rob_entries=64"
