"""Degradation figure at reduced scale: structure, shape, and caching.

The acceptance surface for the reliability extension's analysis layer:
the (organisation x fault rate) and (FgNVM x kill count) sweeps run
through the cached engine, retention is normalised per-organisation,
and the graceful-degradation shape claims hold.
"""

import pytest

from repro.analysis.figure_degradation import (
    DEFAULT_BENCHMARKS,
    FAULT_RATES,
    KILL_COUNTS,
    SERIES,
    check_figure_degradation_shape,
    figure_degradation_configs,
    render_figure_degradation,
    run_figure_degradation,
)
from repro.sim.experiment import ExperimentCache

REQUESTS = 1000


@pytest.fixture(scope="module")
def cache():
    return ExperimentCache()


@pytest.fixture(scope="module")
def fig(cache):
    return run_figure_degradation(list(DEFAULT_BENCHMARKS), REQUESTS, cache)


class TestFigureDegradation:
    def test_all_series_and_points_present(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            assert set(fig.retention[bench]) == set(SERIES)
            for series in SERIES:
                assert set(fig.retention[bench][series]) == set(FAULT_RATES)
            assert set(fig.kill_retention[bench]) == set(KILL_COUNTS)

    def test_healthy_anchor_is_exactly_one(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            for series in SERIES:
                assert fig.retention[bench][series][0.0] == 1.0
            assert fig.kill_retention[bench][0] == 1.0

    def test_shape_checks_pass(self, fig):
        assert check_figure_degradation_shape(fig) == []

    def test_faults_actually_cost_retries(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            for series in SERIES:
                assert fig.retries_at_max[bench][series] > 0

    def test_kills_actually_retire_tiles(self, fig):
        for bench in DEFAULT_BENCHMARKS:
            assert fig.tiles_retired_at_max[bench] >= 1

    def test_render_contains_both_panels(self, fig):
        text = render_figure_degradation(fig)
        assert "retention vs write-verify failure rate" in text
        assert "retention vs seeded tile kills" in text
        for series in SERIES:
            assert series in text

    def test_configs_are_distinctly_named(self):
        configs = figure_degradation_configs()
        # One healthy anchor per organisation plus each faulted point;
        # kills=0 reuses the healthy FgNVM anchor.
        expected = (len(SERIES) * len(FAULT_RATES)
                    + len(KILL_COUNTS) - 1)
        assert len(configs) == expected
        for name, config in configs.items():
            assert config.name == name

    def test_grid_is_fully_cached(self, cache, fig):
        before = len(cache)
        again = run_figure_degradation(list(DEFAULT_BENCHMARKS), REQUESTS,
                                       cache)
        assert len(cache) == before
        assert again.retention == fig.retention
        assert again.kill_retention == fig.kill_retention
