"""Figure 3 regenerator: each access scheme exhibits its property."""

from repro.analysis.figure3 import (
    backgrounded_write,
    check_figure3,
    multi_activation,
    partial_activation,
    render_figure3,
    run_figure3,
)


class TestScenarios:
    def test_partial_activation_senses_one_slice(self):
        scenario = partial_activation()
        assert scenario.stats.senses == 1
        assert scenario.stats.sense_bits == 512 * 8

    def test_multi_activation_overlaps(self):
        scenario = multi_activation()
        assert scenario.stats.multi_activation_senses == 1
        assert scenario.overlaps()["multi_activation"] > 0

    def test_backgrounded_write_serves_a_read(self):
        scenario = backgrounded_write()
        assert scenario.stats.reads_under_write == 1
        assert scenario.overlaps()["read_under_write"] > 0

    def test_all_checks_pass(self):
        assert check_figure3(run_figure3()) == []

    def test_render_shows_three_panels(self):
        text = render_figure3(run_figure3())
        for panel in ("Partial-Activation", "Multi-Activation",
                      "Backgrounded Write"):
            assert panel in text
        assert "SAG0/CD0" in text

    def test_scenarios_are_deterministic(self):
        first = render_figure3(run_figure3())
        second = render_figure3(run_figure3())
        assert first == second
