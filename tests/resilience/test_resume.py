"""Resume equivalence: an interrupted sweep finishes with zero re-work.

The satellite acceptance test from the roadmap: kill a sweep after K
jobs, resume it, and prove the final results bit-identical to an
uninterrupted run with zero re-simulation of the checkpointed jobs.
"""

import pytest

from repro.config import fgnvm
from repro.errors import ExperimentError
from repro.obs.manifest import read_manifest
from repro.resilience import (
    CORRUPT,
    INTERRUPT,
    FaultPlan,
    FaultSpec,
    ResilientEngine,
    RetryPolicy,
    mangle_blob,
)
from repro.sim.parallel import ExperimentJob, ParallelExperimentEngine, job_key

REQUESTS = 300
FAST_RETRY = RetryPolicy(base_delay_s=0.0, jitter=0.0)


def small(cfg):
    cfg.org.rows_per_bank = 512
    return cfg


def jobs(n):
    return [ExperimentJob(small(fgnvm(4, 4)), "sphinx3", REQUESTS, seed)
            for seed in range(n)]


def clean_summaries(batch):
    return [r.summary()
            for r in ParallelExperimentEngine(workers=1).run_jobs(batch)]


def interrupted_run(cache_dir, batch, after_index, workers=1):
    """Run a sweep that Ctrl-C's itself after ``after_index`` checkpoints."""
    plan = FaultPlan(faults=(
        FaultSpec(kind=INTERRUPT, job_index=after_index),
    ))
    engine = ResilientEngine(
        workers=workers, cache_dir=cache_dir, fault_plan=plan,
        retry=FAST_RETRY,
    )
    with pytest.raises(KeyboardInterrupt):
        engine.run_jobs(batch)
    return engine


@pytest.mark.timeout(120)
class TestResumeEquivalence:
    def test_serial_interrupt_then_resume_zero_rework(self, tmp_path):
        cache_dir = tmp_path / "cache"
        batch = jobs(5)
        expected = clean_summaries(batch)

        first = interrupted_run(cache_dir, batch, after_index=2)
        # Serial order is deterministic: jobs 0..2 checkpointed.
        assert first.rstats.journal_entries == 3
        assert first.rstats.interrupted

        second = ResilientEngine(workers=1, cache_dir=cache_dir,
                                 resume=True)
        assert second.resumable_jobs == 3
        got = [r.summary() for r in second.run_jobs(batch)]

        assert got == expected
        assert second.stats.executed == 2  # only the unfinished tail
        assert second.stats.disk_hits == 3
        assert second.rstats.resumed_hits == 3
        sources = [r.source for r in second.records]
        assert sources.count("disk") == 3
        assert sources.count("simulated") == 2

    def test_pooled_interrupt_then_resume(self, tmp_path):
        cache_dir = tmp_path / "cache"
        batch = jobs(5)
        expected = clean_summaries(batch)

        interrupted_run(cache_dir, batch, after_index=1, workers=2)

        second = ResilientEngine(workers=1, cache_dir=cache_dir,
                                 resume=True)
        checkpointed = second.resumable_jobs
        assert checkpointed >= 1  # at least the interrupting job
        got = [r.summary() for r in second.run_jobs(batch)]
        assert got == expected
        # Exactly the non-checkpointed jobs were re-simulated.
        assert second.stats.executed == len(batch) - checkpointed
        assert second.rstats.resumed_hits == checkpointed

    def test_partial_manifest_flushed_on_interrupt(self, tmp_path):
        cache_dir = tmp_path / "cache"
        interrupted_run(cache_dir, jobs(4), after_index=1)
        data = read_manifest(cache_dir / "run-manifest.json")
        assert data["interrupted"] is True
        assert data["resilience"]["journal_entries"] == 2
        assert data["resilience"]["faults_injected"] == 0
        assert len(data["jobs"]) == 2  # the completed prefix only

    def test_resume_recomputes_corrupted_checkpoint(self, tmp_path):
        cache_dir = tmp_path / "cache"
        batch = jobs(4)
        expected = clean_summaries(batch)
        first = interrupted_run(cache_dir, batch, after_index=2)

        # Rot one checkpointed blob behind the journal's back.
        victim = job_key(batch[1])
        mangle_blob(first.disk._path(victim), CORRUPT)

        second = ResilientEngine(workers=1, cache_dir=cache_dir,
                                 resume=True)
        # Verification caught the rot: two intact checkpoints remain.
        assert second.resumable_jobs == 2
        assert second.disk.corrupt_blobs == 1
        got = [r.summary() for r in second.run_jobs(batch)]
        assert got == expected
        assert second.stats.executed == 2  # corrupted + never-run

    def test_resume_journal_supersedes_after_recompute(self, tmp_path):
        """A recomputed job re-journals, so a third run does no work."""
        cache_dir = tmp_path / "cache"
        batch = jobs(3)
        first = interrupted_run(cache_dir, batch, after_index=1)
        mangle_blob(first.disk._path(job_key(batch[0])), CORRUPT)

        second = ResilientEngine(workers=1, cache_dir=cache_dir,
                                 resume=True)
        second.run_jobs(batch)

        third = ResilientEngine(workers=1, cache_dir=cache_dir,
                                resume=True)
        assert third.resumable_jobs == 3
        third.run_jobs(batch)
        assert third.stats.executed == 0

    def test_resume_without_cache_rejected(self):
        with pytest.raises(ExperimentError, match="persistent cache"):
            ResilientEngine(workers=1, resume=True)
