"""Unit tests for the deterministic fault plan and its applicators."""

import errno

import pytest

from repro.config import fgnvm
from repro.errors import (
    ExperimentError,
    TransientJobError,
    WorkerCrashError,
)
from repro.resilience import (
    CACHE_FAULTS,
    CORRUPT,
    CRASH,
    DISK_FULL,
    FAULT_KINDS,
    HANG,
    INTERRUPT,
    TORN,
    TRANSIENT,
    WORKER_FAULTS,
    FaultPlan,
    FaultSpec,
    apply_worker_fault,
    disk_full_error,
    faulted_execute_job,
    mangle_blob,
)
from repro.sim.parallel import ExperimentJob, execute_job

REQUESTS = 300


def small(cfg):
    cfg.org.rows_per_bank = 512
    return cfg


def job(benchmark="sphinx3"):
    return ExperimentJob(small(fgnvm(4, 4)), benchmark, REQUESTS)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExperimentError, match="unknown fault kind"):
            FaultSpec(kind="meteor", job_index=0)

    def test_negative_index_rejected(self):
        with pytest.raises(ExperimentError, match="job_index"):
            FaultSpec(kind=CRASH, job_index=-1)

    def test_kind_taxonomy_is_complete(self):
        assert set(FAULT_KINDS) == (
            set(WORKER_FAULTS) | set(CACHE_FAULTS) | {INTERRUPT}
        )


class TestFaultPlan:
    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(7, 10, crashes=2, hangs=1, corrupt=1)
        b = FaultPlan.seeded(7, 10, crashes=2, hangs=1, corrupt=1)
        assert a == b
        assert a != FaultPlan.seeded(8, 10, crashes=2, hangs=1, corrupt=1)

    def test_seeded_uses_distinct_indices(self):
        plan = FaultPlan.seeded(
            3, 6, crashes=2, hangs=1, transients=1, corrupt=1, disk_full=1
        )
        indices = [spec.job_index for spec in plan.faults]
        assert len(indices) == len(set(indices)) == 6

    def test_seeded_overflow_rejected(self):
        with pytest.raises(ExperimentError, match="cannot place"):
            FaultPlan.seeded(0, 2, crashes=3)

    def test_worker_fault_respects_attempts(self):
        plan = FaultPlan(faults=(FaultSpec(kind=CRASH, job_index=4),))
        assert plan.worker_fault(4, 0) is not None
        assert plan.worker_fault(4, 1) is None  # retry must succeed
        assert plan.worker_fault(3, 0) is None

    def test_cache_fault_lookup(self):
        plan = FaultPlan(faults=(FaultSpec(kind=TORN, job_index=2),))
        assert plan.cache_fault(2).kind == TORN
        assert plan.cache_fault(1) is None
        assert plan.worker_fault(2, 0) is None  # cache faults aren't worker

    def test_interrupt_after(self):
        plan = FaultPlan(faults=(FaultSpec(kind=INTERRUPT, job_index=1),))
        assert plan.interrupt_after(1)
        assert not plan.interrupt_after(0)

    def test_json_round_trip(self):
        plan = FaultPlan.seeded(5, 8, crashes=1, corrupt=1, hangs=1)
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_malformed_json_rejected(self):
        with pytest.raises(ExperimentError, match="malformed fault plan"):
            FaultPlan.from_json("{not json")
        with pytest.raises(ExperimentError, match="malformed fault plan"):
            FaultPlan.from_json('{"faults": [{"bogus": 1}]}')

    def test_describe_names_every_fault(self):
        plan = FaultPlan.seeded(0, 4, crashes=1, hangs=1)
        text = plan.describe()
        assert "crash" in text and "hang" in text
        assert "no faults" in FaultPlan().describe()


class TestApplicators:
    def test_serial_crash_softens_to_exception(self):
        spec = FaultSpec(kind=CRASH, job_index=0)
        with pytest.raises(WorkerCrashError):
            apply_worker_fault(spec, in_process=True)

    def test_transient_raises_transient(self):
        spec = FaultSpec(kind=TRANSIENT, job_index=0)
        with pytest.raises(TransientJobError):
            apply_worker_fault(spec, in_process=True)

    def test_serial_hang_is_capped(self):
        import time

        spec = FaultSpec(kind=HANG, job_index=0, seconds=0.01)
        t0 = time.monotonic()
        apply_worker_fault(spec, in_process=True)
        assert time.monotonic() - t0 < 1.0

    def test_faulted_execute_without_fault_matches_plain(self):
        result, wall_s = faulted_execute_job(job(), None)
        assert wall_s > 0
        assert result.summary() == execute_job(job()).summary()

    def test_disk_full_error_is_enospc(self):
        exc = disk_full_error(FaultSpec(kind=DISK_FULL, job_index=3))
        assert isinstance(exc, OSError)
        assert exc.errno == errno.ENOSPC

    def test_mangle_blob_torn_truncates(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x" * 100)
        mangle_blob(path, TORN)
        assert len(path.read_bytes()) == 50

    def test_mangle_blob_corrupt_keeps_length(self, tmp_path):
        path = tmp_path / "blob"
        original = bytes(range(64))
        path.write_bytes(original)
        mangle_blob(path, CORRUPT)
        mangled = path.read_bytes()
        assert len(mangled) == len(original)
        assert mangled != original

    def test_mangle_blob_rejects_other_kinds(self, tmp_path):
        path = tmp_path / "blob"
        path.write_bytes(b"x")
        with pytest.raises(ExperimentError):
            mangle_blob(path, CRASH)
