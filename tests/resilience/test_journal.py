"""Unit tests for the append-only sweep journal."""

import json

from repro.config import fgnvm
from repro.resilience import JOURNAL_SCHEMA, SweepJournal
from repro.sim.parallel import DiskResultCache, ExperimentJob, execute_job

REQUESTS = 300


def small(cfg):
    cfg.org.rows_per_bank = 512
    return cfg


def job():
    return ExperimentJob(small(fgnvm(4, 4)), "sphinx3", REQUESTS)


class TestJournal:
    def test_record_and_read_back(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record("a" * 64, "1" * 64, job=job(), batch="sweep:x")
        journal.record("b" * 64, "2" * 64)
        entries = journal.entries()
        assert len(journal) == 2
        assert entries[0]["schema"] == JOURNAL_SCHEMA
        assert entries[0]["key"] == "a" * 64
        assert entries[0]["config"] == job().config.name
        assert entries[0]["benchmark"] == "sphinx3"
        assert entries[0]["batch"] == "sweep:x"
        assert journal.completed() == {
            "a" * 64: "1" * 64,
            "b" * 64: "2" * 64,
        }

    def test_missing_file_is_empty(self, tmp_path):
        journal = SweepJournal(tmp_path / "missing.jsonl")
        assert journal.entries() == []
        assert journal.completed() == {}
        assert len(journal) == 0

    def test_later_entries_win(self, tmp_path):
        journal = SweepJournal(tmp_path / "j.jsonl")
        journal.record("a" * 64, "1" * 64)
        journal.record("a" * 64, "2" * 64)  # recomputed after quarantine
        assert journal.completed() == {"a" * 64: "2" * 64}

    def test_torn_trailing_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record("a" * 64, "1" * 64)
        journal.record("b" * 64, "2" * 64)
        # Simulate a kill mid-append: last line cut short.
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])
        assert journal.completed() == {"a" * 64: "1" * 64}
        assert journal.skipped_lines == 1

    def test_garbage_lines_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = SweepJournal(path)
        journal.record("a" * 64, "1" * 64)
        with path.open("a") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps(["a", "list"]) + "\n")
        assert journal.completed() == {"a" * 64: "1" * 64}
        assert journal.skipped_lines == 2

    def test_code_version_filter(self, tmp_path):
        path = tmp_path / "j.jsonl"
        old = SweepJournal(path, code_version="vOld")
        old.record("a" * 64, "1" * 64)
        new = SweepJournal(path, code_version="vNew")
        new.record("b" * 64, "2" * 64)
        assert new.completed() == {"b" * 64: "2" * 64}
        assert old.completed() == {"a" * 64: "1" * 64}
        assert len(new) == 2  # entries() is version-agnostic

    def test_verified_keys_checks_the_blobs(self, tmp_path):
        disk = DiskResultCache(tmp_path / "cache")
        journal = SweepJournal(tmp_path / "cache" / "j.jsonl")
        result = execute_job(job())

        good, rotten, missing = "a" * 64, "b" * 64, "c" * 64
        journal.record(good, disk.put(good, result))
        disk.put(rotten, result)
        journal.record(rotten, "0" * 64)  # journal disagrees with blob
        journal.record(missing, "1" * 64)  # blob never written

        assert journal.verified_keys(disk) == {good}
        # The mismatching blob was quarantined, not trusted.
        assert disk.corrupt_blobs == 1
        assert disk.get(rotten) is None
