"""Unit tests for the retry policy and the transient/fatal split."""

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.errors import (
    ExperimentError,
    FatalJobError,
    JobTimeoutError,
    ReproError,
    TransientJobError,
    WorkerCrashError,
)
from repro.resilience import DEFAULT_RETRY_POLICY, RetryPolicy, is_transient


class TestTransientSplit:
    def test_transient_types(self):
        assert is_transient(TransientJobError("x"))
        assert is_transient(WorkerCrashError("x"))
        assert is_transient(JobTimeoutError("x"))
        assert is_transient(BrokenProcessPool())
        assert is_transient(TimeoutError())
        assert is_transient(ConnectionError())

    def test_fatal_types(self):
        assert not is_transient(ValueError("deterministic"))
        assert not is_transient(ExperimentError("bad config"))
        assert not is_transient(FatalJobError("gave up"))
        assert not is_transient(KeyboardInterrupt())

    def test_error_hierarchy(self):
        # Transient errors subclass ReproError; fatal wraps are
        # ExperimentError so existing handlers keep catching them.
        assert issubclass(TransientJobError, ReproError)
        assert issubclass(WorkerCrashError, TransientJobError)
        assert issubclass(JobTimeoutError, TransientJobError)
        assert issubclass(FatalJobError, ExperimentError)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ExperimentError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ExperimentError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ExperimentError):
            RetryPolicy().delay(0)

    def test_delay_grows_exponentially_without_jitter(self):
        policy = RetryPolicy(base_delay_s=0.1, max_delay_s=10.0, jitter=0.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_delay_capped(self):
        policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.5, jitter=0.0)
        assert policy.delay(10) == pytest.approx(1.5)

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay_s=0.1, jitter=0.25, seed=42)
        for attempt in (1, 2, 3):
            raw = min(policy.max_delay_s,
                      policy.base_delay_s * 2 ** (attempt - 1))
            delay = policy.delay(attempt)
            assert delay == policy.delay(attempt)  # seeded => repeatable
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_different_seeds_jitter_differently(self):
        a = RetryPolicy(seed=1).delay(1)
        b = RetryPolicy(seed=2).delay(1)
        assert a != b

    def test_default_policy_is_snappy(self):
        assert DEFAULT_RETRY_POLICY.max_attempts == 3
        assert DEFAULT_RETRY_POLICY.delay(1) < 0.1
