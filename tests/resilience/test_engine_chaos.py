"""Chaos tests: the resilient engine under injected faults.

The acceptance bar from the paper-reproduction roadmap: a sweep run
under a seeded fault plan (worker crashes, hangs, corrupt blobs,
disk-full) must produce bit-identical metrics to a fault-free serial
run.  Pool-based cases use tiny simulations so a full chaos cycle
stays under a few seconds.
"""

import pytest

from repro.config import fgnvm
from repro.errors import FatalJobError
from repro.obs import ListSink, make_probe
from repro.obs.events import (
    EV_DEGRADED,
    EV_FAULT,
    EV_POOL_REBUILD,
    EV_RETRY,
)
from repro.resilience import (
    CRASH,
    HANG,
    TRANSIENT,
    FaultPlan,
    FaultSpec,
    ResilientEngine,
    RetryPolicy,
    resilient_engine,
)
from repro.sim.parallel import ExperimentJob, ParallelExperimentEngine

REQUESTS = 300
FAST_RETRY = RetryPolicy(base_delay_s=0.0, jitter=0.0)


def small(cfg):
    cfg.org.rows_per_bank = 512
    return cfg


def jobs(n):
    return [ExperimentJob(small(fgnvm(4, 4)), "sphinx3", REQUESTS, seed)
            for seed in range(n)]


def clean_summaries(batch):
    return [r.summary()
            for r in ParallelExperimentEngine(workers=1).run_jobs(batch)]


class TestSerialChaos:
    def test_transient_fault_retried_to_identical_result(self):
        batch = jobs(3)
        plan = FaultPlan(faults=(
            FaultSpec(kind=TRANSIENT, job_index=1),
        ))
        engine = ResilientEngine(
            workers=1, fault_plan=plan, retry=FAST_RETRY
        )
        got = [r.summary() for r in engine.run_jobs(batch)]
        assert got == clean_summaries(batch)
        assert engine.rstats.retries == 1
        assert engine.rstats.faults_injected == 1

    def test_serial_crash_softened_and_retried(self):
        batch = jobs(2)
        plan = FaultPlan(faults=(FaultSpec(kind=CRASH, job_index=0),))
        engine = ResilientEngine(
            workers=1, fault_plan=plan, retry=FAST_RETRY
        )
        got = [r.summary() for r in engine.run_jobs(batch)]
        assert got == clean_summaries(batch)
        assert engine.rstats.retries == 1

    def test_persistent_fault_becomes_fatal(self):
        # attempts=99 keeps the fault firing on every retry.
        plan = FaultPlan(faults=(
            FaultSpec(kind=TRANSIENT, job_index=0, attempts=99),
        ))
        engine = ResilientEngine(
            workers=1, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0),
        )
        with pytest.raises(FatalJobError, match="still failing after 2"):
            engine.run_jobs(jobs(1))
        assert engine.rstats.retries == 1  # one retry, then gave up

    def test_deterministic_error_not_retried(self):
        engine = ResilientEngine(workers=1, retry=FAST_RETRY)
        bad = ExperimentJob(small(fgnvm(4, 4)), "no-such-benchmark",
                            REQUESTS)
        with pytest.raises(Exception):
            engine.run_jobs([bad])
        assert engine.rstats.retries == 0


@pytest.mark.timeout(120)
class TestPooledChaos:
    def test_crash_and_corrupt_bit_identical(self, tmp_path):
        """The headline acceptance test, sized for CI."""
        batch = jobs(4)
        expected = clean_summaries(batch)
        plan = FaultPlan.seeded(7, len(batch), crashes=1, corrupt=1)
        sink = ListSink()
        engine = ResilientEngine(
            workers=2,
            cache_dir=tmp_path / "cache",
            fault_plan=plan,
            retry=FAST_RETRY,
            probe=make_probe(sink),
        )
        got = [r.summary() for r in engine.run_jobs(batch)]
        assert got == expected
        assert engine.rstats.worker_crashes >= 1
        assert engine.rstats.pool_rebuilds >= 1
        # The crash fires at least once and may re-fire if the job is
        # requeued before its own future reports; the corrupt fault
        # fires exactly once.  Either way both kinds were injected.
        assert engine.rstats.faults_injected >= 2
        kinds = {e.kind for e in sink.events}
        assert {EV_FAULT, EV_RETRY, EV_POOL_REBUILD} <= kinds

    def test_hang_times_out_and_retries(self, tmp_path):
        batch = jobs(3)
        expected = clean_summaries(batch)
        plan = FaultPlan(faults=(
            FaultSpec(kind=HANG, job_index=1, seconds=30.0),
        ))
        engine = ResilientEngine(
            workers=2,
            cache_dir=tmp_path / "cache",
            fault_plan=plan,
            retry=FAST_RETRY,
            job_timeout_s=1.0,
        )
        got = [r.summary() for r in engine.run_jobs(batch)]
        assert got == expected
        assert engine.rstats.timeouts >= 1
        assert engine.rstats.pool_rebuilds >= 1

    def test_degrades_to_serial_past_rebuild_limit(self, tmp_path):
        batch = jobs(3)
        expected = clean_summaries(batch)
        plan = FaultPlan(faults=(FaultSpec(kind=CRASH, job_index=0),))
        sink = ListSink()
        engine = ResilientEngine(
            workers=2,
            cache_dir=tmp_path / "cache",
            fault_plan=plan,
            retry=FAST_RETRY,
            max_pool_rebuilds=0,  # first broken pool forces serial
            probe=make_probe(sink),
        )
        got = [r.summary() for r in engine.run_jobs(batch)]
        assert got == expected
        assert engine.rstats.degraded_to_serial == 1
        assert EV_DEGRADED in {e.kind for e in sink.events}

    def test_manifest_carries_resilience_counters(self, tmp_path):
        from repro.obs.manifest import read_manifest

        batch = jobs(2)
        plan = FaultPlan(faults=(
            FaultSpec(kind=TRANSIENT, job_index=0),
        ))
        engine = ResilientEngine(
            workers=1,
            cache_dir=tmp_path / "cache",
            fault_plan=plan,
            retry=FAST_RETRY,
        )
        engine.run_jobs(batch)
        data = read_manifest(engine.write_manifest())
        assert data["resilience"]["retries"] == 1
        assert data["resilience"]["faults_injected"] == 1
        assert data["resilience"]["journal_entries"] == 2
        assert data["interrupted"] is False


class TestFactoryAndValidation:
    def test_factory_honours_env_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
        engine = resilient_engine(workers=1)
        assert engine.disk is not None
        assert engine.disk.root == tmp_path / "env-cache"
        assert engine.journal is not None

    def test_bad_job_timeout_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError, match="job_timeout_s"):
            ResilientEngine(workers=1, job_timeout_s=0)

    def test_plain_batch_unchanged_by_supervision(self, tmp_path):
        """No faults, no plan: behaves exactly like the base engine."""
        batch = jobs(3)
        engine = ResilientEngine(workers=1, cache_dir=tmp_path / "c")
        got = [r.summary() for r in engine.run_jobs(batch)]
        assert got == clean_summaries(batch)
        assert engine.rstats.as_dict() == {
            "retries": 0, "worker_crashes": 0, "timeouts": 0,
            "pool_rebuilds": 0, "degraded_to_serial": 0,
            "faults_injected": 0, "journal_entries": 3,
            "resumed_hits": 0,
        }
