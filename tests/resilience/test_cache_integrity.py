"""End-to-end cache integrity: torn blobs quarantined, results recomputed."""

from repro.config import fgnvm
from repro.resilience import (
    DISK_FULL,
    FaultPlan,
    FaultSpec,
    ResilientEngine,
)
from repro.sim.parallel import (
    QUARANTINE_DIR,
    ExperimentJob,
    ParallelExperimentEngine,
)

REQUESTS = 300


def small(cfg):
    cfg.org.rows_per_bank = 512
    return cfg


def job(benchmark="sphinx3", seed=None):
    return ExperimentJob(small(fgnvm(4, 4)), benchmark, REQUESTS, seed)


class TestTruncatedBlobRecovery:
    def test_truncated_blob_quarantined_and_recomputed(self, tmp_path):
        """Regression: a blob torn on disk must never poison a rerun."""
        cache_dir = tmp_path / "cache"
        first = ParallelExperimentEngine(workers=1, cache_dir=cache_dir)
        expected = first.run_jobs([job()])[0].summary()

        blob = next(cache_dir.glob("*/*.pkl"))
        data = blob.read_bytes()
        blob.write_bytes(data[: len(data) // 2])

        fresh = ParallelExperimentEngine(workers=1, cache_dir=cache_dir)
        recomputed = fresh.run_jobs([job()])[0].summary()

        assert recomputed == expected
        assert fresh.stats.executed == 1  # miss, not a poisoned hit
        assert fresh.disk.corrupt_blobs == 1
        assert fresh.stats.corrupt_blobs == 1
        quarantined = list(
            (cache_dir / QUARANTINE_DIR).glob("*.corrupt")
        )
        assert len(quarantined) == 1
        assert quarantined[0].read_bytes() == data[: len(data) // 2]

    def test_no_temp_files_left_behind(self, tmp_path):
        cache_dir = tmp_path / "cache"
        engine = ParallelExperimentEngine(workers=1, cache_dir=cache_dir)
        engine.run_jobs([job(), job(benchmark="mcf")])
        leftovers = [p for p in cache_dir.rglob("*")
                     if p.suffix in (".tmp", ".probe")]
        assert leftovers == []


class TestDiskFullSurvival:
    def test_injected_disk_full_does_not_lose_the_result(self, tmp_path):
        plan = FaultPlan(faults=(
            FaultSpec(kind=DISK_FULL, job_index=0),
        ))
        engine = ResilientEngine(
            workers=1, cache_dir=tmp_path / "cache", fault_plan=plan
        )
        baseline = ParallelExperimentEngine(workers=1)
        expected = [r.summary() for r in baseline.run_jobs(
            [job(), job(benchmark="mcf")]
        )]
        got = [r.summary() for r in engine.run_jobs(
            [job(), job(benchmark="mcf")]
        )]
        assert got == expected
        assert engine.disk.put_errors == 1
        assert engine.rstats.faults_injected == 1
        # Only the second job made it to disk; the first stayed
        # in-memory and is simply recomputed next run.
        assert len(engine.disk) == 1
        assert engine.rstats.journal_entries == 1
