"""Request lifecycle and operation parsing."""

import pytest

from repro.memsys.request import MemRequest, OpType, RequestState


class TestOpType:
    @pytest.mark.parametrize("token,expected", [
        ("R", OpType.READ), ("W", OpType.WRITE),
        ("r", OpType.READ), (" w ", OpType.WRITE),
    ])
    def test_token_parsing(self, token, expected):
        assert OpType.from_token(token) is expected

    def test_unknown_token_rejected(self):
        with pytest.raises(ValueError):
            OpType.from_token("X")


class TestLifecycle:
    def test_fresh_request_state(self):
        req = MemRequest(OpType.READ, 0x1000)
        assert req.state is RequestState.CREATED
        assert req.is_read and not req.is_write

    def test_ids_are_unique_and_increasing(self):
        first = MemRequest(OpType.READ, 0)
        second = MemRequest(OpType.WRITE, 0)
        assert second.req_id > first.req_id

    def test_full_lifecycle_and_latency(self):
        req = MemRequest(OpType.READ, 0x40)
        req.mark_queued(100)
        assert req.state is RequestState.QUEUED
        req.mark_issued(110, 160, "row_miss")
        assert req.state is RequestState.ISSUED
        assert req.service_kind == "row_miss"
        req.mark_completed()
        assert req.state is RequestState.COMPLETED
        assert req.latency == 60

    def test_latency_before_completion_is_an_error(self):
        req = MemRequest(OpType.READ, 0x40)
        with pytest.raises(ValueError):
            _ = req.latency

    def test_repr_mentions_op_and_address(self):
        req = MemRequest(OpType.WRITE, 0xdead40)
        text = repr(req)
        assert "W" in text and "0xdead40" in text
