"""Statistics collection and derived metrics."""

import pytest

from repro.memsys.stats import (
    LATENCY_BUCKETS,
    LATENCY_PERCENTILES,
    StatsCollector,
    histogram_percentile,
)


class TestCounting:
    def test_read_kinds(self):
        stats = StatsCollector()
        stats.count_read_issue("row_hit")
        stats.count_read_issue("underfetch")
        stats.count_read_issue("row_miss")
        stats.count_read_issue("row_miss")
        assert stats.reads == 4
        assert stats.row_hits == 1
        assert stats.underfetches == 1
        assert stats.row_misses == 2
        assert stats.row_hit_rate == pytest.approx(0.25)
        assert stats.underfetch_rate == pytest.approx(0.25)

    def test_sense_and_overlap_counting(self):
        stats = StatsCollector()
        stats.count_sense(4096, overlapping_reads=0, overlapping_writes=0)
        stats.count_sense(4096, overlapping_reads=2, overlapping_writes=0)
        stats.count_sense(4096, overlapping_reads=0, overlapping_writes=1)
        assert stats.senses == 3
        assert stats.sense_bits == 3 * 4096
        assert stats.multi_activation_senses == 1
        assert stats.reads_under_write == 1

    def test_write_counting(self):
        stats = StatsCollector()
        stats.count_write_issue(512, overlapping=0)
        stats.count_write_issue(512, overlapping=3)
        assert stats.writes == 2
        assert stats.write_bits == 1024
        assert stats.writes_overlapped == 1
        assert stats.requests == 2


class TestLatency:
    def test_histogram_buckets(self):
        stats = StatsCollector()
        stats.count_read_latency(8)    # first bucket edge
        stats.count_read_latency(9)    # second bucket
        stats.count_read_latency(10**9)  # last catch-all bucket
        assert stats.latency_histogram[0] == 1
        assert stats.latency_histogram[1] == 1
        assert stats.latency_histogram[-1] == 1
        assert sum(stats.latency_histogram) == 3

    def test_average_and_max(self):
        stats = StatsCollector()
        stats.reads = 2
        stats.count_read_latency(10)
        stats.count_read_latency(30)
        assert stats.avg_read_latency == pytest.approx(20.0)
        assert stats.read_latency_max == 30

    def test_bucket_edges_are_increasing(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)


class TestPercentiles:
    def test_percentile_is_bucket_upper_edge(self):
        stats = StatsCollector()
        for _ in range(99):
            stats.count_read_latency(8)     # bucket 0: <= 8
        stats.count_read_latency(10)        # bucket 1: <= 16
        assert stats.latency_percentile(50) == LATENCY_BUCKETS[0]
        assert stats.latency_percentile(95) == LATENCY_BUCKETS[0]
        assert stats.latency_percentile(99) == LATENCY_BUCKETS[0]
        assert stats.latency_percentile(100) == LATENCY_BUCKETS[1]

    def test_open_ended_bucket_reports_observed_max(self):
        stats = StatsCollector()
        stats.count_read_latency(10**9)
        assert stats.latency_percentile(99) == 10**9

    def test_empty_histogram_gives_zero(self):
        assert StatsCollector().latency_percentile(99) == 0
        assert histogram_percentile([0, 0], 50) == 0

    def test_monotone_in_percent(self):
        stats = StatsCollector()
        for latency in (4, 12, 40, 90, 200, 600):
            stats.count_read_latency(latency)
        values = [stats.latency_percentile(p) for p in (10, 50, 90, 99)]
        assert values == sorted(values)

    def test_percentiles_land_in_as_dict(self):
        stats = StatsCollector()
        stats.count_read_latency(20)
        data = stats.as_dict()
        for percent in LATENCY_PERCENTILES:
            assert f"read_latency_p{percent}" in data
        assert data["read_latency_p50"] >= 20


class TestDerived:
    def test_ipc(self):
        stats = StatsCollector()
        stats.instructions = 8000
        stats.cycles = 1000
        assert stats.ipc(cpu_cycles_per_mem_cycle=8.0) == pytest.approx(1.0)

    def test_ipc_zero_cycles(self):
        assert StatsCollector().ipc(8.0) == 0.0

    def test_rates_with_no_reads(self):
        stats = StatsCollector()
        assert stats.row_hit_rate == 0.0
        assert stats.avg_read_latency == 0.0

    def test_as_dict_is_flat_and_complete(self):
        stats = StatsCollector()
        stats.count_read_issue("row_hit")
        data = stats.as_dict()
        for key in ("reads", "row_hit_rate", "sense_bits", "cycles"):
            assert key in data
        assert all(isinstance(v, (int, float)) for v in data.values())
