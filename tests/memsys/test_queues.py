"""Transaction and write queues: capacity, watermarks, forwarding."""

import pytest

from repro.errors import QueueFullError
from repro.memsys.queues import TransactionQueue, WriteQueue, oldest_first
from repro.memsys.request import MemRequest, OpType


def req(address=0, op=OpType.READ):
    return MemRequest(op, address)


class TestTransactionQueue:
    def test_push_and_capacity(self):
        queue = TransactionQueue(2)
        queue.push(req(0x40), cycle=1)
        queue.push(req(0x80), cycle=2)
        assert queue.is_full
        with pytest.raises(QueueFullError):
            queue.push(req(0xc0), cycle=3)

    def test_push_records_arrival(self):
        queue = TransactionQueue(4)
        request = req()
        queue.push(request, cycle=42)
        assert request.arrival_cycle == 42

    def test_remove_arbitrary_entry(self):
        queue = TransactionQueue(4)
        first, second = req(0x40), req(0x80)
        queue.push(first, 0)
        queue.push(second, 1)
        queue.remove(first)
        assert list(queue) == [second]
        assert queue.space() == 3

    def test_oldest(self):
        queue = TransactionQueue(4)
        assert queue.oldest() is None
        first = req(0x40)
        queue.push(first, 0)
        queue.push(req(0x80), 1)
        assert queue.oldest() is first

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TransactionQueue(0)


class TestWriteQueueWatermarks:
    def make(self):
        return WriteQueue(capacity=8, high_watermark=6, low_watermark=2)

    def test_drain_hysteresis(self):
        queue = self.make()
        writes = [req(i * 64, OpType.WRITE) for i in range(8)]
        for w in writes[:5]:
            queue.push(w, 0)
        assert not queue.draining
        queue.push(writes[5], 0)
        assert queue.draining  # reached high watermark
        for w in writes[:3]:
            queue.remove(w)
        assert queue.draining  # 3 left, still >= low watermark
        queue.remove(writes[3])
        assert queue.draining  # exactly at low watermark: keep draining
        queue.remove(writes[4])
        assert not queue.draining  # 1 left, strictly below low

    def test_drain_stops_strictly_below_low(self):
        queue = self.make()
        writes = [req(i * 64, OpType.WRITE) for i in range(6)]
        for w in writes:
            queue.push(w, 0)
        assert queue.draining
        for w in writes[:4]:
            queue.remove(w)
        # Exactly at the low watermark: still draining.
        assert len(queue) == 2
        assert queue.draining

    def test_force_drain(self):
        queue = self.make()
        queue.push(req(0, OpType.WRITE), 0)
        assert not queue.draining
        queue.force_drain()
        assert queue.draining

    def test_bad_watermarks_rejected(self):
        with pytest.raises(ValueError):
            WriteQueue(8, high_watermark=9, low_watermark=2)
        with pytest.raises(ValueError):
            WriteQueue(8, high_watermark=4, low_watermark=4)


class TestForwarding:
    def test_forwards_matching_address(self):
        queue = WriteQueue(8, 6, 2)
        write = req(0x1240, OpType.WRITE)
        queue.push(write, 0)
        assert queue.forwards(0x1240)
        assert not queue.forwards(0x1280)
        queue.remove(write)
        assert not queue.forwards(0x1240)

    def test_last_write_wins(self):
        queue = WriteQueue(8, 6, 2)
        first = req(0x40, OpType.WRITE)
        second = req(0x40, OpType.WRITE)
        queue.push(first, 0)
        queue.push(second, 1)
        queue.remove(first)
        # The newer write still covers the address.
        assert queue.forwards(0x40)


def test_oldest_first_sorts_by_arrival_then_id():
    a, b, c = req(0x40), req(0x80), req(0xc0)
    a.mark_queued(5)
    b.mark_queued(3)
    c.mark_queued(5)
    assert oldest_first([a, b, c]) == [b, a, c]
