"""Address mapping: decode/encode, SAG/CD extraction, bank folding."""

import pytest

from repro.config import fgnvm, many_banks
from repro.errors import AddressError
from repro.memsys.address import AddressMapper


@pytest.fixture
def mapper():
    return AddressMapper(fgnvm(4, 4).org)


class TestRoundTrip:
    def test_encode_decode_identity(self, mapper):
        addr = mapper.encode(bank=5, row=123, col=7)
        dec = mapper.decode(addr)
        assert (dec.bank, dec.row, dec.col) == (5, 123, 7)

    def test_offset_bits_ignored(self, mapper):
        base = mapper.encode(bank=2, row=9, col=3)
        for offset in (0, 1, 63):
            dec = mapper.decode(base + offset)
            assert (dec.bank, dec.row, dec.col) == (2, 9, 3)

    def test_consecutive_lines_walk_columns_then_banks(self, mapper):
        decs = [mapper.decode(i * 64) for i in range(17)]
        assert [d.col for d in decs[:16]] == list(range(16))
        assert all(d.bank == 0 for d in decs[:16])
        # Crossing the row boundary moves to the next channel/bank bits.
        assert decs[16].col == 0
        assert (decs[16].bank, decs[16].row) != (0, 0) or decs[16].rank != 0

    def test_addresses_wrap_at_capacity(self, mapper):
        addr = mapper.encode(bank=1, row=2, col=3)
        wrapped = mapper.decode(addr + mapper.capacity_bytes)
        assert (wrapped.bank, wrapped.row, wrapped.col) == (1, 2, 3)

    def test_negative_address_rejected(self, mapper):
        with pytest.raises(AddressError):
            mapper.decode(-1)

    def test_encode_rejects_out_of_range(self, mapper):
        with pytest.raises(AddressError):
            mapper.encode(bank=8)  # only 8 banks: 0..7


class TestSagCdExtraction:
    def test_sag_tracks_high_row_bits(self, mapper):
        org = fgnvm(4, 4).org
        rows_per_sag = org.rows_per_sag
        for sag in range(4):
            dec = mapper.decode(mapper.encode(row=sag * rows_per_sag))
            assert dec.sag == sag

    def test_cd_tracks_high_column_bits(self, mapper):
        # 16 columns over 4 CDs: columns 0-3 -> CD 0, 4-7 -> CD 1, ...
        for col in range(16):
            dec = mapper.decode(mapper.encode(col=col))
            assert dec.cd == col // 4

    def test_cd_span_indexing(self):
        org = fgnvm(8, 32).org
        mapper = AddressMapper(org)
        # 16 columns over 32 CDs: each line owns two CDs starting at 2*col.
        for col in range(16):
            dec = mapper.decode(mapper.encode(col=col))
            assert dec.cd == col * 2


class TestManyBanksFolding:
    def test_units_are_distinct_per_sag_cd(self):
        org = many_banks(4, 4).org
        org.rows_per_bank = 256
        mapper = AddressMapper(org)
        seen = set()
        rows_per_sag = org.rows_per_sag
        for bank in range(2):
            for sag in range(4):
                for cd in range(4):
                    dec = mapper.decode(mapper.encode(
                        bank=bank, row=sag * rows_per_sag, col=cd * 4
                    ))
                    seen.add(dec.flat_bank)
        assert len(seen) == 2 * 4 * 4

    def test_flat_bank_count(self):
        org = many_banks(8, 2).org
        mapper = AddressMapper(org)
        assert mapper.independent_banks() == 128

    def test_plain_fgnvm_keeps_physical_banks(self, mapper):
        assert mapper.independent_banks() == 8

    def test_local_coordinates(self):
        org = many_banks(4, 4).org
        org.rows_per_bank = 256
        mapper = AddressMapper(org)
        dec = mapper.decode(mapper.encode(row=70, col=6))
        assert mapper.local_row(dec) == 70 % org.rows_per_sag
        assert mapper.local_col(dec) == 6 % org.columns_per_cd
