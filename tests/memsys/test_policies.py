"""Unit tests for the policy registry and its built-in policies.

Covers registry lookup and pairing checks, ``apply_policy``'s SALP
re-architecting, the SALP bank factory branch, PALP's overlap-aware
ranking against a scriptable bank, and the controller's ``note_issued``
feedback hook for stateful policies.
"""

import pytest

from repro.config import baseline_nvm, fgnvm, salp
from repro.config.params import BankArchitecture, SchedulerKind
from repro.errors import ConfigError, SchedulerError
from repro.memsys.bank_baseline import build_banks
from repro.memsys.controller import MemoryController
from repro.memsys.policies import (
    ORGANISATION_CAPS,
    apply_policy,
    check_policy_pairing,
    default_policy_name,
    get_policy,
    policy_names,
)
from repro.memsys.request import MemRequest, OpType
from repro.memsys.scheduler import (
    FrfcfsScheduler,
    IncrementalFrfcfs,
    IncrementalPalp,
    IncrementalRbla,
    PalpReference,
    make_scheduler,
)
from repro.memsys.stats import StatsCollector

BITS_PER_BYTE = 8


class TestRegistryLookup:
    def test_builtin_roster(self):
        assert set(policy_names()) >= {
            "fcfs", "frfcfs-incremental", "palp", "salp", "rbla"
        }

    def test_specs_are_complete(self):
        for name in policy_names():
            spec = get_policy(name)
            assert spec.name == name
            assert spec.description
            assert spec.citation
            assert callable(spec.fast) and callable(spec.oracle)

    def test_unknown_name_lists_roster(self):
        with pytest.raises(SchedulerError) as err:
            get_policy("zzz-nope")
        assert "palp" in str(err.value)

    def test_default_policy_per_kind(self):
        assert default_policy_name(SchedulerKind.FCFS) == "fcfs"
        assert (default_policy_name(SchedulerKind.FRFCFS)
                == "frfcfs-incremental")

    def test_make_scheduler_honours_config_policy(self):
        sched = make_scheduler(SchedulerKind.FRFCFS, policy="palp")
        assert isinstance(sched, IncrementalPalp)

    def test_pairing_check(self):
        palp = get_policy("palp")
        with pytest.raises(ConfigError):
            check_policy_pairing(palp, BankArchitecture.BASELINE)
        check_policy_pairing(palp, BankArchitecture.FGNVM)
        check_policy_pairing(palp, BankArchitecture.SALP)

    def test_caps_table(self):
        assert not ORGANISATION_CAPS[BankArchitecture.BASELINE].reads_under_write
        assert ORGANISATION_CAPS[BankArchitecture.FGNVM].partial_activation
        assert not ORGANISATION_CAPS[BankArchitecture.SALP].partial_activation


class TestApplyPolicy:
    def test_palp_keeps_organisation(self):
        cfg = apply_policy(fgnvm(8, 2), "palp")
        assert cfg.controller.policy == "palp"
        assert cfg.org.architecture is BankArchitecture.FGNVM
        assert cfg.name.endswith("+palp")

    def test_salp_rearchitects(self):
        cfg = apply_policy(fgnvm(8, 2), "salp")
        assert cfg.org.architecture is BankArchitecture.SALP
        assert cfg.org.column_divisions == 1
        assert cfg.org.subarray_groups == 8
        assert cfg.name.endswith("+salp")

    def test_unknown_policy_raises(self):
        with pytest.raises(SchedulerError):
            apply_policy(fgnvm(8, 2), "zzz-nope")

    def test_incompatible_policy_raises(self):
        with pytest.raises(ConfigError):
            apply_policy(baseline_nvm(), "palp")

    def test_original_config_untouched(self):
        base = fgnvm(8, 2)
        apply_policy(base, "salp")
        assert base.org.architecture is BankArchitecture.FGNVM
        assert base.controller.policy is None


class TestSalpBanks:
    def test_build_banks_salp_branch(self):
        cfg = salp(8)
        banks = build_banks(cfg.org, cfg.timing.cycles(), StatsCollector())
        assert len(banks) == (
            cfg.org.ranks_per_channel * cfg.org.banks_per_rank
        )
        for bank in banks:
            assert bank.subarray_groups == 8
            assert bank.column_divisions == 1
            # Full-row sensing: the whole row latches per activation,
            # even the DRAM-style ACT before a write.
            assert bank.sense_bits == (
                cfg.org.row_size_bytes * BITS_PER_BYTE
            )
            assert bank.sense_on_write_activate

    def test_salp_preset_shape(self):
        cfg = salp(8)
        assert cfg.org.architecture is BankArchitecture.SALP
        assert cfg.controller.policy == "salp"
        assert cfg.name == "salp-8"


class ScriptableBank:
    """Hit/ready/active-write behaviour scripted per request id."""

    def __init__(self, writes_in_flight=0):
        self.hits = {}
        self.ready = {}
        self.writes_in_flight = writes_in_flight

    def is_row_hit(self, req):
        return self.hits.get(req.req_id, False)

    def earliest_start(self, req, now):
        return self.ready.get(req.req_id, now)

    def active_writes(self, now):
        return self.writes_in_flight


def request(arrival, op=OpType.READ):
    req = MemRequest(op, arrival * 64)
    req.mark_queued(arrival)
    return req


class TestPalpRanking:
    def test_read_overlapping_write_preferred(self):
        """Among equal-age misses, a read that can slip under a write in
        a *different* partition outranks one aimed at an idle bank."""
        busy = ScriptableBank(writes_in_flight=1)
        idle = ScriptableBank()
        plain = request(0)
        overlap = request(0)
        picked = IncrementalPalp().pick(
            [(plain, idle), (overlap, busy)], now=5
        )
        assert picked[0] is overlap
        ranked = PalpReference().rank(
            [(plain, idle), (overlap, busy)], now=5
        )
        assert ranked[0][0] is overlap

    def test_row_hit_still_beats_overlap(self):
        busy = ScriptableBank(writes_in_flight=1)
        idle = ScriptableBank()
        hit = request(3)
        idle.hits[hit.req_id] = True
        overlap = request(0)
        picked = IncrementalPalp().pick([(overlap, busy), (hit, idle)],
                                        now=5)
        assert picked[0] is hit

    def test_write_requests_never_count_as_overlap(self):
        busy = ScriptableBank(writes_in_flight=1)
        older_write = request(0, OpType.WRITE)
        newer_write = request(2, OpType.WRITE)
        picked = IncrementalPalp().pick(
            [(newer_write, busy), (older_write, busy)], now=5
        )
        assert picked[0] is older_write

    def test_banks_without_active_writes_attr(self):
        """Baseline banks lack ``active_writes``; PALP degrades to
        FRFCFS order instead of crashing."""
        bank = ScriptableBank()
        del bank.__class__.active_writes
        try:
            old, new = request(0), request(2)
            picked = IncrementalPalp().pick([(new, bank), (old, bank)],
                                            now=5)
            assert picked[0] is old
        finally:
            ScriptableBank.active_writes = (
                lambda self, now: self.writes_in_flight
            )


class TestControllerIntegration:
    def make_controller(self, policy):
        cfg = apply_policy(fgnvm(4, 4), policy)
        cfg.org.rows_per_bank = 256
        return MemoryController(cfg, StatsCollector())

    def test_rbla_scheduler_installed_with_feedback_hook(self):
        ctrl = self.make_controller("rbla")
        assert isinstance(ctrl.scheduler, IncrementalRbla)
        assert callable(getattr(ctrl.scheduler, "note_issued"))

    def test_palp_scheduler_installed(self):
        ctrl = self.make_controller("palp")
        assert isinstance(ctrl.scheduler, IncrementalPalp)

    def test_env_reference_forces_oracle_for_policy(self, monkeypatch):
        from repro.memsys.scheduler import SCHEDULER_ENV

        monkeypatch.setenv(SCHEDULER_ENV, "reference")
        ctrl = self.make_controller("palp")
        assert isinstance(ctrl.scheduler, PalpReference)

    def test_default_policy_unchanged(self):
        cfg = fgnvm(4, 4)
        ctrl = MemoryController(cfg, StatsCollector())
        assert isinstance(ctrl.scheduler, IncrementalFrfcfs)
        assert not isinstance(ctrl.scheduler, (IncrementalPalp,
                                               IncrementalRbla))

    def test_rbla_scores_move_during_run(self):
        from repro.sim.experiment import run_benchmark

        cfg = apply_policy(fgnvm(4, 4), "rbla")
        cfg.org.rows_per_bank = 256
        result = run_benchmark(cfg, "mcf", requests=200)
        assert result.cycles > 0
        assert result.summary()["reads"] + result.summary()["writes"] > 0
