"""Device-level reliability: fault plans, wear, retirement, bit-identity."""

import dataclasses

import pytest

from repro.config import fgnvm, validate_config, with_reliability
from repro.config.params import ReliabilityParams
from repro.errors import ConfigError, ExperimentError
from repro.memsys.reliability import (
    BankReliability,
    DeviceFaultPlan,
    DeviceFaultSpec,
    make_bank_reliability,
    reliability_validation_problems,
    scale_probability,
)
from repro.sim.experiment import run_benchmark


def make_params(**overrides) -> ReliabilityParams:
    defaults = dict(enabled=True, write_fail_prob=0.0, max_write_retries=3,
                    endurance_writes=None, spare_tiles=1,
                    wear_rotate_every=None, seed=0, fault_plan=None)
    defaults.update(overrides)
    return ReliabilityParams(**defaults)


class TestDeviceFaultPlan:
    def test_seeded_plan_is_deterministic_and_sorted(self):
        a = DeviceFaultPlan.seeded(seed=9, kills=5, banks=4,
                                   subarray_groups=4, column_divisions=2)
        b = DeviceFaultPlan.seeded(seed=9, kills=5, banks=4,
                                   subarray_groups=4, column_divisions=2)
        assert a == b
        assert len(a.kills) == 5
        assert len({(s.bank, s.sag, s.cd) for s in a.kills}) == 5
        assert list(a.kills) == sorted(
            a.kills, key=lambda s: (s.bank, s.sag, s.cd)
        )
        for spec in a.kills:
            assert 0 <= spec.bank < 4
            assert 0 <= spec.sag < 4
            assert 0 <= spec.cd < 2
            assert 1 <= spec.after_writes <= 64

    def test_seeded_plan_rejects_too_many_kills(self):
        with pytest.raises(ExperimentError, match="cannot kill"):
            DeviceFaultPlan.seeded(seed=0, kills=9, banks=2,
                                   subarray_groups=2, column_divisions=2)

    def test_json_round_trip(self):
        plan = DeviceFaultPlan.seeded(seed=3, kills=3, banks=8,
                                      subarray_groups=8, column_divisions=2)
        assert DeviceFaultPlan.from_json(plan.to_json()) == plan

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ExperimentError, match="malformed"):
            DeviceFaultPlan.from_json("{not json")
        with pytest.raises(ExperimentError, match="malformed"):
            DeviceFaultPlan.from_json('{"kills": [{"bogus": 1}]}')

    def test_spec_validates_coordinates(self):
        with pytest.raises(ExperimentError, match="bank must be >= 0"):
            DeviceFaultSpec(bank=-1, sag=0, cd=0)
        with pytest.raises(ExperimentError, match="coordinates"):
            DeviceFaultSpec(bank=0, sag=-1, cd=0)
        with pytest.raises(ExperimentError, match="after_writes"):
            DeviceFaultSpec(bank=0, sag=0, cd=0, after_writes=0)

    def test_kills_for_bank_filters(self):
        plan = DeviceFaultPlan(seed=0, kills=(
            DeviceFaultSpec(bank=1, sag=2, cd=0, after_writes=5),
            DeviceFaultSpec(bank=3, sag=0, cd=1, after_writes=7),
        ))
        assert plan.kills_for_bank(1) == {(2, 0): 5}
        assert plan.kills_for_bank(0) == {}


class TestValidation:
    def test_disabled_block_is_never_checked(self):
        config = fgnvm(4, 2)
        config.reliability = ReliabilityParams(
            enabled=False, write_fail_prob=9.0, max_write_retries=0,
            spare_tiles=-1,
        )
        assert reliability_validation_problems(config) == []
        validate_config(config)

    @pytest.mark.parametrize("overrides, needle", [
        (dict(write_fail_prob=-0.1), "write_fail_prob"),
        (dict(write_fail_prob=1.5), "write_fail_prob"),
        (dict(max_write_retries=0), "max_write_retries"),
        (dict(endurance_writes=0), "endurance_writes"),
        (dict(spare_tiles=0), "spare_tiles"),
        (dict(wear_rotate_every=0), "wear_rotate_every"),
        (dict(seed=-1), "seed"),
        (dict(fault_plan="not a plan"), "fault_plan"),
    ])
    def test_enabled_block_rejects_bad_values(self, overrides, needle):
        config = fgnvm(4, 2)
        config.reliability = make_params(**overrides)
        problems = reliability_validation_problems(config)
        assert problems and needle in problems[0]
        with pytest.raises(ConfigError, match=needle):
            validate_config(config)

    def test_with_reliability_validates(self):
        with pytest.raises(ConfigError, match="write_fail_prob"):
            with_reliability(fgnvm(4, 2), write_fail_prob=2.0)


class TestBankReliability:
    def test_disabled_params_build_none(self):
        assert make_bank_reliability(None, 0, 4, 2) is None
        assert make_bank_reliability(make_params(enabled=False), 0, 4, 2) \
            is None
        assert isinstance(
            make_bank_reliability(make_params(), 0, 4, 2), BankReliability
        )

    def test_draws_are_deterministic(self):
        params = make_params(write_fail_prob=0.5, max_write_retries=4)
        a = BankReliability(params, 2, 4, 2)
        b = BankReliability(params, 2, 4, 2)
        for _ in range(30):
            sag, cd = 1, 0
            assert a.draw_retries(sag, cd) == b.draw_retries(sag, cd)
            retries, _ = a.draw_retries(sag, cd)
            a.record_write(sag, (cd,), retries)
            b.record_write(sag, (cd,), retries)

    def test_probability_extremes(self):
        never = BankReliability(make_params(write_fail_prob=0.0), 0, 2, 2)
        assert never.draw_retries(0, 0) == (0, False)
        always = BankReliability(
            make_params(write_fail_prob=1.0, max_write_retries=3), 0, 2, 2
        )
        assert always.draw_retries(0, 0) == (3, True)
        assert scale_probability(1.0) == 1 << 53

    def test_wear_accumulates_per_pulse(self):
        rel = BankReliability(make_params(), 0, 2, 2)
        rel.record_write(0, (0, 1), retries=2)
        assert rel.wear[(0, 0)] == 3 and rel.wear[(0, 1)] == 3
        assert rel.demand_writes == 1

    def test_endurance_retires_spare_first_then_remaps(self):
        rel = BankReliability(
            make_params(endurance_writes=2, spare_tiles=1), 0, 2, 2
        )
        # Wear one tile past endurance: the spare absorbs it in place.
        events = rel.record_write(0, (0,), retries=1)
        assert events == [(0, 0, True)]
        assert rel.spares_left == 0
        assert rel.wear[(0, 0)] == 0  # fresh spare
        assert rel.resolve(0, 0) == (0, 0)
        # Past endurance again with no spares: remap onto a survivor.
        rel.record_write(0, (0,), retries=0)
        events = rel.record_write(0, (0,), retries=0)
        assert events == [(0, 0, False)]
        assert (0, 0) in rel.retired
        assert rel.resolve(0, 0) == (0, 1)
        assert rel.live_tiles() == 3

    def test_remap_chains_collapse(self):
        rel = BankReliability(
            make_params(endurance_writes=1, spare_tiles=1), 0, 2, 2
        )
        rel.record_write(0, (0,), retries=0)   # consumes the spare
        rel.record_write(0, (0,), retries=0)   # retires (0,0) -> (0,1)
        assert rel.resolve(0, 0) == (0, 1)
        rel.record_write(0, (1,), retries=0)   # retires (0,1) -> (1,0)
        assert rel.resolve(0, 1) == (1, 0)
        # The old chain head follows, never pointing at a dead tile.
        assert rel.resolve(0, 0) == (1, 0)

    def test_last_tile_is_never_retired(self):
        rel = BankReliability(
            make_params(endurance_writes=1, spare_tiles=1), 0, 1, 2
        )
        rel.record_write(0, (0,), retries=0)   # spare
        rel.record_write(0, (0,), retries=0)   # retire (0,0) -> (0,1)
        assert rel.live_tiles() == 1
        for _ in range(5):
            assert rel.record_write(0, (1,), retries=0) == []
        assert rel.live_tiles() == 1

    def test_scripted_kill_fires_at_threshold(self):
        plan = DeviceFaultPlan(seed=0, kills=(
            DeviceFaultSpec(bank=4, sag=1, cd=1, after_writes=3),
        ))
        rel = BankReliability(
            make_params(fault_plan=plan, spare_tiles=1), 4, 2, 2
        )
        assert rel.record_write(1, (1,), retries=0) == []
        assert rel.record_write(1, (1,), retries=0) == []
        assert rel.record_write(1, (1,), retries=0) == [(1, 1, True)]
        # The kill belonged to the dead physical tile: the spare lives.
        assert rel.record_write(1, (1,), retries=0) == []

    def test_out_of_range_kills_are_inert(self):
        plan = DeviceFaultPlan(seed=0, kills=(
            DeviceFaultSpec(bank=0, sag=7, cd=1, after_writes=1),
        ))
        rel = BankReliability(make_params(fault_plan=plan), 0, 2, 2)
        assert rel._kills == {}

    def test_rotation_skips_retired_tiles(self):
        rel = BankReliability(
            make_params(endurance_writes=1, spare_tiles=1,
                        wear_rotate_every=2),
            0, 2, 2,
        )
        assert not rel.maintenance_due()
        rel.record_write(0, (0,), retries=0)
        rel.record_write(0, (0,), retries=0)   # retires (0,0)
        assert rel.maintenance_due()
        order = [rel.next_rotation_tile() for _ in range(3)]
        assert order == [(0, 1), (1, 0), (1, 1)]


class TestSimulationIntegration:
    def test_disabled_reliability_is_bit_identical(self):
        plain = fgnvm(4, 2)
        carried = with_reliability(
            plain, write_fail_prob=0.3, wear_rotate_every=8,
            endurance_writes=50, seed=5, name=plain.name,
        )
        carried.reliability = dataclasses.replace(
            carried.reliability, enabled=False
        )
        a = run_benchmark(plain, "mcf", 600).summary()
        b = run_benchmark(carried, "mcf", 600).summary()
        assert a == b

    def test_seeded_runs_are_deterministic(self):
        config = with_reliability(
            fgnvm(4, 2), write_fail_prob=0.1, wear_rotate_every=32,
            endurance_writes=60, seed=7,
        )
        a = run_benchmark(config, "mcf", 800).summary()
        b = run_benchmark(config, "mcf", 800).summary()
        assert a == b
        assert a["write_retries"] > 0

    def test_retries_cost_cycles(self):
        base = run_benchmark(fgnvm(4, 2), "mcf", 800)
        faulted = run_benchmark(
            with_reliability(fgnvm(4, 2), write_fail_prob=0.5,
                             max_write_retries=6, seed=1),
            "mcf", 800,
        )
        assert faulted.stats.write_retries > 0
        assert faulted.cycles > base.cycles
        # Retry pulses drive extra energy through the write path.
        assert faulted.stats.write_bits > base.stats.write_bits

    def test_kills_shrink_parallelism_but_run_completes(self):
        plan = DeviceFaultPlan.seeded(seed=2, kills=4, banks=8,
                                      subarray_groups=4,
                                      column_divisions=2, after_writes=4)
        result = run_benchmark(
            with_reliability(fgnvm(4, 2), fault_plan=plan, seed=2),
            "mcf", 2000,
        )
        assert result.stats.tiles_retired > 0
        assert result.stats.spares_consumed > 0
        assert result.instructions > 0
