"""Command-slot and data-lane bus models."""

import pytest

from repro.memsys.bus import CommandBus, DataBus


class TestCommandBus:
    def test_single_slot_per_cycle(self):
        bus = CommandBus(1)
        assert bus.acquire(10)
        assert not bus.acquire(10)
        assert bus.acquire(11)

    def test_multi_issue_width(self):
        bus = CommandBus(4)
        taken = [bus.acquire(5) for _ in range(5)]
        assert taken == [True] * 4 + [False]
        assert bus.slots_free(5) == 0
        assert bus.slots_free(6) == 4

    def test_counts_commands(self):
        bus = CommandBus(2)
        for cycle in range(3):
            bus.acquire(cycle)
        assert bus.commands_issued == 3

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            CommandBus(0)


class TestDataBus:
    def test_uncontended_transfer_starts_on_time(self):
        bus = DataBus(width=1, tburst=4)
        assert bus.reserve(100) == 100
        assert bus.next_free() == 104

    def test_contention_pushes_start_back(self):
        bus = DataBus(width=1, tburst=4)
        bus.reserve(100)
        assert bus.reserve(101) == 104
        assert bus.conflict_cycles == 3

    def test_wide_bus_carries_parallel_bursts(self):
        bus = DataBus(width=2, tburst=4)
        assert bus.reserve(100) == 100
        assert bus.reserve(100) == 100
        assert bus.reserve(100) == 104

    def test_earliest_start_is_monotone(self):
        bus = DataBus(width=1, tburst=4)
        bus.reserve(10)
        assert bus.earliest_start(0) == 14
        assert bus.earliest_start(20) == 20

    def test_utilisation(self):
        bus = DataBus(width=1, tburst=4)
        bus.reserve(0)
        bus.reserve(4)
        assert bus.utilisation(16) == pytest.approx(0.5)
        assert bus.utilisation(0) == 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            DataBus(0, 4)
        with pytest.raises(ValueError):
            DataBus(1, 0)
