"""Memory controller: admission, phases, issue, completion, flush."""

import pytest

from repro.config import baseline_nvm, fgnvm
from repro.memsys.controller import MemoryController
from repro.memsys.request import MemRequest, OpType, RequestState
from repro.memsys.stats import StatsCollector


def controller_for(cfg):
    cfg.org.rows_per_bank = 256
    return MemoryController(cfg, StatsCollector())


@pytest.fixture
def ctrl():
    return controller_for(baseline_nvm())


@pytest.fixture
def fg_ctrl():
    return controller_for(fgnvm(4, 4))


def run_until(ctrl, req, limit=20_000):
    """Tick the controller until ``req`` completes; returns the cycle."""
    for cycle in range(limit):
        done = ctrl.tick(cycle)
        if req in done:
            return cycle
    raise AssertionError(f"request {req} never completed")


class TestAdmission:
    def test_enqueue_decodes(self, ctrl):
        req = MemRequest(OpType.READ, 0x4040)
        ctrl.enqueue(req, 0)
        assert req.decoded is not None
        assert len(ctrl.read_queue) == 1

    def test_can_accept_tracks_queue_space(self, ctrl):
        for i in range(32):
            assert ctrl.can_accept(OpType.READ)
            ctrl.enqueue(MemRequest(OpType.READ, i * 0x100000), 0)
        assert not ctrl.can_accept(OpType.READ)
        assert ctrl.can_accept(OpType.WRITE)

    def test_read_forwarded_from_write_queue(self, ctrl):
        ctrl.enqueue(MemRequest(OpType.WRITE, 0x80), 0)
        read = MemRequest(OpType.READ, 0x80)
        ctrl.enqueue(read, 1)
        assert len(ctrl.read_queue) == 0
        assert read.service_kind == "forwarded"
        assert ctrl.forwarded_reads == 1
        cycle = run_until(ctrl, read)
        assert cycle <= 1 + ctrl.timing.tcas_hit + ctrl.timing.tburst


class TestReadService:
    def test_single_read_latency(self, ctrl):
        req = MemRequest(OpType.READ, 0x40)
        ctrl.enqueue(req, 0)
        run_until(ctrl, req)
        assert req.state is RequestState.COMPLETED
        # tRCD + tCAS + tBURST for a cold miss.
        assert req.latency == 10 + 38 + 4

    def test_row_hits_ride_the_open_row(self, ctrl):
        miss = MemRequest(OpType.READ, 0x0)
        hit = MemRequest(OpType.READ, 0x40)  # same row, next line
        ctrl.enqueue(miss, 0)
        ctrl.enqueue(hit, 0)
        run_until(ctrl, hit)
        assert miss.service_kind == "row_miss"
        assert hit.service_kind == "row_hit"
        assert hit.completion_cycle > miss.completion_cycle

    def test_reads_to_different_banks_overlap(self, ctrl):
        bank_stride = 1 << 14  # one full row span x banks
        first = MemRequest(OpType.READ, 0)
        second = MemRequest(OpType.READ, 0x400)  # next bank, same row idx
        ctrl.enqueue(first, 0)
        ctrl.enqueue(second, 0)
        run_until(ctrl, second)
        # Bank-parallel: the second finishes well before 2x the miss
        # latency (it only loses the command slot and bus if contended).
        assert second.completion_cycle < first.completion_cycle + 20
        assert bank_stride  # silence unused (documentation constant)


class TestWritePhases:
    def test_writes_wait_for_drain_in_baseline(self, ctrl):
        write = MemRequest(OpType.WRITE, 0x40)
        read = MemRequest(OpType.READ, 0x20000)
        ctrl.enqueue(write, 0)
        ctrl.enqueue(read, 0)
        ctrl.tick(0)
        # The read got the slot; below watermark, the write waits.
        assert read.state is RequestState.ISSUED
        assert write.state is RequestState.QUEUED

    def test_writes_issue_when_no_reads(self, ctrl):
        write = MemRequest(OpType.WRITE, 0x40)
        ctrl.enqueue(write, 0)
        ctrl.tick(0)
        assert write.state is RequestState.ISSUED

    def test_watermark_drain_prioritises_writes(self, ctrl):
        high = ctrl.config.controller.write_high_watermark
        for i in range(high):
            ctrl.enqueue(MemRequest(OpType.WRITE, 0x40 * (i + 1)), 0)
        read = MemRequest(OpType.READ, 0x100000)
        ctrl.enqueue(read, 0)
        ctrl.tick(0)
        assert read.state is RequestState.QUEUED  # a write went first

    def test_eager_writes_fill_idle_slots(self, fg_ctrl):
        fg_ctrl.config.controller.eager_writes = True
        write = MemRequest(OpType.WRITE, 0x40)  # bank 0
        fg_ctrl.enqueue(write, 0)
        read = MemRequest(OpType.READ, 0x400)  # bank 1
        fg_ctrl.enqueue(read, 0)
        fg_ctrl.tick(0)   # read wins the first slot
        fg_ctrl.tick(1)   # write sneaks into the next idle slot
        assert write.state is RequestState.ISSUED
        assert write.issue_cycle == 1

    def test_write_cap_limits_inflight_writes_per_bank(self, fg_ctrl):
        fg_ctrl.config.controller.eager_writes = True
        fg_ctrl.config.controller.max_writes_per_bank = 1
        # Two writes to the same bank, different tiles.
        first = MemRequest(OpType.WRITE, 0x0)
        second = MemRequest(OpType.WRITE, 0x200)  # other CD, same bank
        fg_ctrl.enqueue(first, 0)
        fg_ctrl.enqueue(second, 0)
        fg_ctrl.tick(0)
        fg_ctrl.tick(1)
        assert first.state is RequestState.ISSUED
        assert second.state is RequestState.QUEUED


class TestFlushAndProgress:
    def test_flush_drains_everything(self, ctrl):
        for i in range(5):
            ctrl.enqueue(MemRequest(OpType.WRITE, 0x40 * i), 0)
        ctrl.begin_flush()
        for cycle in range(20_000):
            ctrl.tick(cycle)
            if not ctrl.busy():
                break
        assert not ctrl.busy()
        assert ctrl.stats.writes == 5

    def test_next_event_after_idle_is_none(self, ctrl):
        assert ctrl.next_event_after(100) is None

    def test_next_event_after_points_at_completion(self, ctrl):
        req = MemRequest(OpType.READ, 0x40)
        ctrl.enqueue(req, 0)
        ctrl.tick(0)
        horizon = ctrl.next_event_after(0)
        assert horizon == req.completion_cycle

    def test_pending_counts_queues_and_inflight(self, ctrl):
        ctrl.enqueue(MemRequest(OpType.READ, 0x40), 0)
        ctrl.enqueue(MemRequest(OpType.WRITE, 0x80000), 0)
        assert ctrl.pending == 2
        ctrl.tick(0)
        assert ctrl.pending == 2  # one in flight, one queued


class TestQueueFullAccounting:
    def _fill_reads(self, ctrl):
        i = 0
        while ctrl.has_space(OpType.READ):
            ctrl.enqueue(MemRequest(OpType.READ, i * 0x100000), 0)
            i += 1

    def test_read_refusal_counts_event(self, ctrl):
        self._fill_reads(ctrl)
        before = ctrl.stats.read_queue_full_events
        assert not ctrl.can_accept(OpType.READ)
        assert not ctrl.can_accept(OpType.READ)
        assert ctrl.stats.read_queue_full_events == before + 2

    def test_write_refusal_counts_event(self, ctrl):
        i = 0
        while ctrl.has_space(OpType.WRITE):
            ctrl.enqueue(MemRequest(OpType.WRITE, i * 0x100000), 0)
            i += 1
        assert not ctrl.can_accept(OpType.WRITE)
        assert ctrl.stats.write_queue_full_events == 1

    def test_successful_admission_not_counted(self, ctrl):
        assert ctrl.can_accept(OpType.READ)
        assert ctrl.can_accept(OpType.WRITE)
        assert ctrl.stats.read_queue_full_events == 0
        assert ctrl.stats.write_queue_full_events == 0

    def test_has_space_is_pure(self, ctrl):
        self._fill_reads(ctrl)
        for _ in range(5):
            assert not ctrl.has_space(OpType.READ)
        assert ctrl.stats.read_queue_full_events == 0

    def test_refusal_emits_queue_stall_event(self):
        from repro.memsys.stats import StatsCollector
        from repro.obs import ListSink, make_probe
        from repro.obs.events import EV_QUEUE_STALL

        cfg = baseline_nvm()
        cfg.org.rows_per_bank = 256
        sink = ListSink()
        ctrl = MemoryController(
            cfg, StatsCollector(), probe=make_probe(sink)
        )
        self._fill_reads(ctrl)
        sink.events.clear()
        assert not ctrl.can_accept(OpType.READ, now=42)
        stalls = [e for e in sink.events if e.kind == EV_QUEUE_STALL]
        assert len(stalls) == 1
        assert stalls[0].cycle == 42
        assert stalls[0].op == "R"
        assert stalls[0].value == len(ctrl.read_queue)
