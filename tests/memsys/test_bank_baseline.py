"""Baseline bank semantics and the many-banks factory."""

import pytest

from repro.config import baseline_nvm, fgnvm, many_banks
from repro.memsys.address import AddressMapper
from repro.memsys.bank_baseline import BaselineNvmBank, build_banks
from repro.memsys.request import (
    SERVICE_ROW_HIT,
    SERVICE_ROW_MISS,
    MemRequest,
    OpType,
)
from repro.memsys.stats import StatsCollector

MISS_BUSY = 48
WRITE_BUSY = 66


@pytest.fixture
def setup():
    cfg = baseline_nvm()
    cfg.org.rows_per_bank = 256
    stats = StatsCollector()
    bank = BaselineNvmBank(
        0, cfg.timing.cycles(), cfg.org.row_size_bytes,
        cfg.org.cacheline_bytes, stats,
    )
    return bank, AddressMapper(cfg.org), stats


def read(mapper, row=0, col=0):
    req = MemRequest(OpType.READ, mapper.encode(row=row, col=col))
    req.decoded = mapper.decode(req.address)
    return req


def write(mapper, row=0, col=0):
    req = MemRequest(OpType.WRITE, mapper.encode(row=row, col=col))
    req.decoded = mapper.decode(req.address)
    return req


class TestSingleOpenRow:
    def test_full_row_buffered_after_one_miss(self, setup):
        bank, mapper, _ = setup
        bank.issue(read(mapper, row=3, col=0), 0)
        for col in range(16):
            assert bank.classify(read(mapper, row=3, col=col)) == (
                SERVICE_ROW_HIT
            )

    def test_row_change_evicts(self, setup):
        bank, mapper, _ = setup
        bank.issue(read(mapper, row=3), 0)
        req = read(mapper, row=4)
        assert bank.classify(req) == SERVICE_ROW_MISS
        bank.issue(req, MISS_BUSY)
        assert bank.classify(read(mapper, row=3)) == SERVICE_ROW_MISS

    def test_full_row_sense_energy(self, setup):
        bank, mapper, stats = setup
        bank.issue(read(mapper), 0)
        assert stats.sense_bits == 1024 * 8  # the whole 1KB row

    def test_write_activation_senses_full_row(self, setup):
        bank, mapper, stats = setup
        bank.issue(write(mapper, row=7), 0)
        assert stats.sense_bits == 1024 * 8
        # ...and buffers it: subsequent reads to the row hit.
        later = read(mapper, row=7, col=5)
        assert bank.classify(later) == SERVICE_ROW_HIT


class TestWriteBlocksBank:
    def test_no_read_during_write(self, setup):
        bank, mapper, _ = setup
        bank.issue(write(mapper, row=1), 0)
        blocked = read(mapper, row=1, col=9)
        # Even a would-be row hit waits for the write pulse: the single
        # CD's datapath is driving cells.
        assert bank.earliest_start(blocked, 4) == 10 + WRITE_BUSY

    def test_no_parallel_senses(self, setup):
        bank, mapper, _ = setup
        bank.issue(read(mapper, row=0), 0)
        assert bank.earliest_start(read(mapper, row=9), 4) == MISS_BUSY


class TestBuildBanks:
    def test_baseline_count(self):
        cfg = baseline_nvm()
        stats = StatsCollector()
        banks = build_banks(cfg.org, cfg.timing.cycles(), stats)
        assert len(banks) == 8
        assert all(b.subarray_groups == 1 for b in banks)

    def test_fgnvm_grid(self):
        cfg = fgnvm(8, 2)
        banks = build_banks(cfg.org, cfg.timing.cycles(), StatsCollector())
        assert len(banks) == 8
        assert banks[0].subarray_groups == 8
        assert banks[0].column_divisions == 2
        assert banks[0].sense_bits == 512 * 8  # half the 1KB row

    def test_many_banks_units(self):
        cfg = many_banks(8, 2)
        banks = build_banks(cfg.org, cfg.timing.cycles(), StatsCollector())
        assert len(banks) == 128
        # Each unit senses one CD slice's worth per activation.
        assert banks[0].sense_bits == 512 * 8
        assert banks[0].subarray_groups == 1
        # Units follow the baseline protocol (ACT senses on writes too).
        assert banks[0].sense_on_write_activate
