"""Data-placement policy ablations: interleaved vs contiguous SAG/CD."""

import pytest

from repro.config import fgnvm, validate_config, validation_errors
from repro.memsys.address import AddressMapper


def mapper_with(cd_interleaved=False, sag_interleaved=False):
    cfg = fgnvm(4, 4)
    cfg.org.rows_per_bank = 256
    cfg.org.cd_interleaved = cd_interleaved
    cfg.org.sag_interleaved = sag_interleaved
    validate_config(cfg)
    return AddressMapper(cfg.org)


class TestCdPolicies:
    def test_contiguous_groups_adjacent_lines(self):
        mapper = mapper_with(cd_interleaved=False)
        cds = [mapper.decode(mapper.encode(col=c)).cd for c in range(16)]
        assert cds == [0] * 4 + [1] * 4 + [2] * 4 + [3] * 4

    def test_interleaved_rotates_lines(self):
        mapper = mapper_with(cd_interleaved=True)
        cds = [mapper.decode(mapper.encode(col=c)).cd for c in range(16)]
        assert cds == [0, 1, 2, 3] * 4

    def test_interleaved_incompatible_with_sub_line_cds(self):
        cfg = fgnvm(8, 32)
        cfg.org.cd_interleaved = True
        assert any(
            "cd_interleaved" in e for e in validation_errors(cfg)
        )


class TestSagPolicies:
    def test_contiguous_blocks(self):
        mapper = mapper_with(sag_interleaved=False)
        sags = [
            mapper.decode(mapper.encode(row=r)).sag
            for r in (0, 63, 64, 127, 128, 255)
        ]
        assert sags == [0, 0, 1, 1, 2, 3]

    def test_interleaved_rotates_rows(self):
        mapper = mapper_with(sag_interleaved=True)
        sags = [mapper.decode(mapper.encode(row=r)).sag for r in range(8)]
        assert sags == [0, 1, 2, 3, 0, 1, 2, 3]


class TestPoliciesCompose:
    @pytest.mark.parametrize("cd_i", [False, True])
    @pytest.mark.parametrize("sag_i", [False, True])
    def test_coordinates_stay_in_range(self, cd_i, sag_i):
        mapper = mapper_with(cd_interleaved=cd_i, sag_interleaved=sag_i)
        for address in range(0, 1 << 18, 64):
            dec = mapper.decode(address)
            assert 0 <= dec.sag < 4
            assert 0 <= dec.cd < 4

    def test_policies_change_the_mapping(self):
        plain = mapper_with()
        rotated = mapper_with(cd_interleaved=True, sag_interleaved=True)
        diffs = sum(
            1
            for address in range(0, 1 << 16, 64)
            if plain.decode(address) != rotated.decode(address)
        )
        assert diffs > 0
