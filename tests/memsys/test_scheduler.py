"""Scheduling policies: FCFS ordering and FRFCFS row-hit priority."""

import pytest

from repro.config.params import SchedulerKind
from repro.errors import SchedulerError
from repro.memsys.request import MemRequest, OpType
from repro.memsys.scheduler import (
    FcfsScheduler,
    FrfcfsScheduler,
    make_scheduler,
)


class FakeBank:
    """Scriptable bank: per-request hit flags and ready times."""

    def __init__(self):
        self.hits = {}
        self.ready = {}

    def is_row_hit(self, req):
        return self.hits.get(req.req_id, False)

    def earliest_start(self, req, now):
        return self.ready.get(req.req_id, now)


def make_request(arrival):
    req = MemRequest(OpType.READ, arrival * 64)
    req.mark_queued(arrival)
    return req


@pytest.fixture
def bank():
    return FakeBank()


class TestFcfs:
    def test_picks_oldest_issuable(self, bank):
        old, new = make_request(1), make_request(5)
        picked = FcfsScheduler().pick([(new, bank), (old, bank)], now=10)
        assert picked[0] is old

    def test_skips_blocked_head(self, bank):
        old, new = make_request(1), make_request(5)
        bank.ready[old.req_id] = 99  # old request not issuable yet
        picked = FcfsScheduler().pick([(old, bank), (new, bank)], now=10)
        assert picked[0] is new

    def test_none_when_nothing_issuable(self, bank):
        req = make_request(1)
        bank.ready[req.req_id] = 99
        assert FcfsScheduler().pick([(req, bank)], now=10) is None

    def test_arrival_tie_broken_by_id(self, bank):
        first, second = make_request(3), make_request(3)
        picked = FcfsScheduler().pick([(second, bank), (first, bank)], now=5)
        assert picked[0] is first


class TestFrfcfs:
    def test_row_hit_preferred_over_older_miss(self, bank):
        old_miss, young_hit = make_request(1), make_request(8)
        bank.hits[young_hit.req_id] = True
        picked = FrfcfsScheduler().pick(
            [(old_miss, bank), (young_hit, bank)], now=10
        )
        assert picked[0] is young_hit

    def test_oldest_hit_wins_among_hits(self, bank):
        hit_a, hit_b = make_request(2), make_request(4)
        bank.hits[hit_a.req_id] = True
        bank.hits[hit_b.req_id] = True
        picked = FrfcfsScheduler().pick([(hit_b, bank), (hit_a, bank)], 10)
        assert picked[0] is hit_a

    def test_falls_back_to_oldest_miss(self, bank):
        miss_a, miss_b = make_request(2), make_request(4)
        picked = FrfcfsScheduler().pick([(miss_b, bank), (miss_a, bank)], 10)
        assert picked[0] is miss_a

    def test_unissuable_hit_does_not_block_miss(self, bank):
        hit, miss = make_request(1), make_request(2)
        bank.hits[hit.req_id] = True
        bank.ready[hit.req_id] = 50
        picked = FrfcfsScheduler().pick([(hit, bank), (miss, bank)], now=10)
        assert picked[0] is miss

    def test_rank_returns_full_ordering(self, bank):
        reqs = [make_request(i) for i in range(4)]
        bank.hits[reqs[3].req_id] = True
        ranked = FrfcfsScheduler().rank(
            [(r, bank) for r in reqs], now=10
        )
        assert [cand[0] for cand in ranked] == [
            reqs[3], reqs[0], reqs[1], reqs[2]
        ]


class TestFactory:
    def test_mapping(self):
        assert isinstance(
            make_scheduler(SchedulerKind.FCFS), FcfsScheduler
        )
        assert isinstance(
            make_scheduler(SchedulerKind.FRFCFS), FrfcfsScheduler
        )
        # Multi-issue reuses the FRFCFS ranking (width lives in config).
        assert isinstance(
            make_scheduler(SchedulerKind.FRFCFS_MULTI_ISSUE),
            FrfcfsScheduler,
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchedulerError):
            make_scheduler("bogus")
