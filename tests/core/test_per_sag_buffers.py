"""The per-SAG row-buffer extension (beyond the paper, MASA-style)."""

import pytest

from repro.config import fgnvm, fgnvm_per_sag_buffers
from repro.core.area import AreaModel
from repro.core.fgnvm_bank import make_fgnvm_bank
from repro.memsys.address import AddressMapper
from repro.memsys.request import (
    SERVICE_ROW_HIT,
    SERVICE_ROW_MISS,
    SERVICE_UNDERFETCH,
    MemRequest,
    OpType,
)
from repro.memsys.stats import StatsCollector
from repro.sim.simulator import simulate
from repro.workloads.synthetic import multi_stream_kernel


def build(per_sag):
    cfg = fgnvm(4, 4)
    cfg.org.rows_per_bank = 256
    cfg.org.per_sag_row_buffers = per_sag
    stats = StatsCollector()
    bank = make_fgnvm_bank(0, cfg.org, cfg.timing.cycles(), stats)
    return bank, AddressMapper(cfg.org), stats


def read_at(mapper, sag, cd, row_in_sag=0):
    row = sag * 64 + row_in_sag
    req = MemRequest(OpType.READ, mapper.encode(row=row, col=cd * 4))
    req.decoded = mapper.decode(req.address)
    return req


class TestRetentionSemantics:
    def cross_sag_sequence(self, bank, mapper):
        """Sense (sag0, cd0), then (sag1, cd0), then re-read sag0."""
        first = read_at(mapper, sag=0, cd=0)
        bank.issue(first, bank.earliest_start(first, 0))
        second = read_at(mapper, sag=1, cd=0)
        bank.issue(second, bank.earliest_start(second, 100))
        return read_at(mapper, sag=0, cd=0)

    def test_shared_buffer_evicts_across_sags(self):
        bank, mapper, _ = build(per_sag=False)
        revisit = self.cross_sag_sequence(bank, mapper)
        # sag1's sense overwrote the shared CD slice: re-sense needed.
        assert bank.classify(revisit) == SERVICE_UNDERFETCH

    def test_per_sag_buffer_retains_across_sags(self):
        bank, mapper, _ = build(per_sag=True)
        revisit = self.cross_sag_sequence(bank, mapper)
        assert bank.classify(revisit) == SERVICE_ROW_HIT

    def test_row_change_within_sag_still_misses(self):
        bank, mapper, _ = build(per_sag=True)
        first = read_at(mapper, sag=0, cd=0, row_in_sag=0)
        bank.issue(first, 0)
        other_row = read_at(mapper, sag=0, cd=0, row_in_sag=1)
        assert bank.classify(other_row) == SERVICE_ROW_MISS

    def test_write_updates_the_sag_buffer(self):
        bank, mapper, _ = build(per_sag=True)
        write = read_at(mapper, sag=2, cd=1)
        wreq = MemRequest(OpType.WRITE, write.address)
        wreq.decoded = write.decoded
        bank.issue(wreq, 0)
        assert bank.classify(read_at(mapper, sag=2, cd=1)) == SERVICE_ROW_HIT


class TestSystemLevel:
    def test_hit_rate_never_drops(self):
        trace = multi_stream_kernel(
            600, streams=8, gap=3, stream_spacing_bytes=(1 << 20) + 128,
        )
        plain_cfg = fgnvm(8, 2)
        plain_cfg.org.rows_per_bank = 1024
        sag_cfg = fgnvm_per_sag_buffers(8, 2)
        sag_cfg.org.rows_per_bank = 1024
        plain = simulate(plain_cfg, trace)
        extended = simulate(sag_cfg, trace)
        assert extended.stats.row_hit_rate >= plain.stats.row_hit_rate
        assert extended.ipc >= plain.ipc * 0.99

    def test_preset_flag(self):
        cfg = fgnvm_per_sag_buffers(8, 2)
        assert cfg.org.per_sag_row_buffers
        assert "sagbuf" in cfg.name


class TestAreaCost:
    def test_extension_cost_dwarfs_table1(self):
        model = AreaModel()
        extension = model.per_sag_buffer_um2(8, row_size_bytes=1024)
        table1_total = model.report(8, 8).total_best_um2
        assert extension > 5 * table1_total  # why the paper shares one

    def test_cost_scales_with_sags(self):
        model = AreaModel()
        assert model.per_sag_buffer_um2(1) == 0.0
        assert model.per_sag_buffer_um2(16) == pytest.approx(
            (15 / 7) * model.per_sag_buffer_um2(8)
        )

    def test_rejects_bad_sags(self):
        with pytest.raises(ValueError):
            AreaModel().per_sag_buffer_um2(0)
