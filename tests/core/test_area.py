"""Area model: Table 1 anchors, scaling laws, decoder estimate."""

import pytest

from repro.core.area import (
    AreaModel,
    REFERENCE_BANK_AREA_MM2,
    table1_reports,
)
from repro.units import um2_to_mm2


@pytest.fixture
def model():
    return AreaModel()


class TestTable1Anchors:
    def test_row_latches_avg(self, model):
        assert model.row_latches_um2(8) == pytest.approx(2325.0)

    def test_row_latches_max(self, model):
        # Paper rounds to 9,333; pure SAG-linearity gives 4 x 2325.
        assert model.row_latches_um2(32) == pytest.approx(9333.0, rel=0.01)

    def test_csl_latches_avg_and_max(self, model):
        assert model.csl_latches_um2(8, 8) == pytest.approx(636.3)
        assert model.csl_latches_um2(32, 32) == pytest.approx(4242.0)

    def test_lysel_best_case_is_free(self, model):
        assert model.lysel_wires_um2(32, 32, worst=False) == 0.0

    def test_lysel_worst_case_near_tenth_mm2(self, model):
        worst = model.lysel_wires_um2(32, 32, worst=True)
        assert um2_to_mm2(worst) == pytest.approx(0.1, rel=0.05)

    def test_enable_bus_width_matches_paper(self, model):
        # "32 subarray groups and 32 column divisions results in an
        # enable signal bus width of 246um".
        assert model.enable_bus_width_um(32, 32) == pytest.approx(
            246.0, rel=0.01
        )

    def test_totals(self):
        avg, mx = table1_reports()
        assert avg.total_best_um2 == pytest.approx(2961.0, rel=0.01)
        assert um2_to_mm2(mx.total_worst_um2) == pytest.approx(0.11, rel=0.05)

    def test_percentages(self):
        avg, mx = table1_reports()
        assert avg.percent_of_bank(worst=False) < 0.1
        assert mx.percent_of_bank(worst=True) == pytest.approx(0.36, rel=0.05)


class TestScalingLaws:
    def test_row_latches_linear_in_sags(self, model):
        assert model.row_latches_um2(16) == pytest.approx(
            2 * model.row_latches_um2(8)
        )

    def test_csl_latches_scale_with_cds_and_log_sags(self, model):
        # CDs double -> double; SAGs 8->16 adds one select bit (4/3).
        assert model.csl_latches_um2(8, 16) == pytest.approx(
            2 * model.csl_latches_um2(8, 8)
        )
        assert model.csl_latches_um2(16, 8) == pytest.approx(
            (4 / 3) * model.csl_latches_um2(8, 8)
        )

    def test_wire_area_linear_in_tiles(self, model):
        quad = model.lysel_wires_um2(16, 16, worst=True)
        assert model.lysel_wires_um2(32, 32, worst=True) == pytest.approx(
            4 * quad
        )

    def test_report_is_consistent(self, model):
        report = model.report(8, 8)
        assert report.total_best_um2 == pytest.approx(
            report.row_latches_um2 + report.csl_latches_um2
        )
        assert report.total_worst_um2 >= report.total_best_um2


class TestDecoderModel:
    def test_grows_superlinearly(self, model):
        small = model.decoder_transistors(1024)
        large = model.decoder_transistors(65536)
        assert large > 64 * small / 2  # clearly super-constant per row

    def test_split_overhead_is_negligible(self, model):
        # The paper reports N/A: splitting is at worst a few percent and
        # typically *saves* transistors (smaller decode fan-in).
        for sags in (2, 8, 32):
            overhead = model.split_decoder_overhead(65536, sags)
            assert overhead < 0.05

    def test_rejects_non_power_rows(self, model):
        with pytest.raises(ValueError):
            model.decoder_transistors(1000)


class TestParameterValidation:
    def test_rejects_bad_row_bits(self):
        with pytest.raises(ValueError):
            AreaModel(row_address_bits=0)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            AreaModel(over_tile_fraction=1.5)

    def test_csl_requires_power_of_two_sags(self, model):
        with pytest.raises(ValueError):
            model.csl_latches_um2(6, 8)

    def test_reference_area_is_calibrated(self):
        # 0.11 mm^2 == 0.36% fixes the reference near 31 mm^2.
        assert REFERENCE_BANK_AREA_MM2 == pytest.approx(
            0.112 / 0.0036, rel=0.05
        )
