"""TileGrid resource semantics: exclusivity, extension, accounting."""

import pytest

from repro.core.tile import KIND_SENSE, KIND_WRITE, TileGrid


@pytest.fixture
def grid():
    return TileGrid(4, 4)


class TestCdOccupancy:
    def test_occupy_and_release(self, grid):
        until = grid.occupy_cd(0, start=10, duration=38, kind=KIND_SENSE)
        assert until == 48
        assert grid.cd_free_at(0) == 48
        assert grid.cd_free_at(1) == 0

    def test_double_booking_raises(self, grid):
        grid.occupy_cd(0, 0, 38, KIND_SENSE)
        with pytest.raises(ValueError):
            grid.occupy_cd(0, 10, 38, KIND_SENSE)

    def test_sequential_reuse(self, grid):
        grid.occupy_cd(0, 0, 38, KIND_SENSE)
        grid.occupy_cd(0, 48, 38, KIND_SENSE)
        assert grid.cd_free_at(0) == 86


class TestSagSemantics:
    def test_exclusive_occupancy(self, grid):
        grid.occupy_sag_exclusive(1, 0, 48, KIND_SENSE)
        assert grid.sag_free_at(1) == 48
        with pytest.raises(ValueError):
            grid.occupy_sag_exclusive(1, 20, 10, KIND_SENSE)

    def test_extend_prolongs_hold(self, grid):
        grid.occupy_sag_exclusive(0, 0, 48, KIND_SENSE)
        grid.extend_sag(0, 80, KIND_SENSE)
        assert grid.sag_free_at(0) == 80

    def test_extend_never_shortens(self, grid):
        grid.occupy_sag_exclusive(0, 0, 48, KIND_SENSE)
        grid.extend_sag(0, 30, KIND_SENSE)
        assert grid.sag_free_at(0) == 48

    def test_write_free_at_only_for_writes(self, grid):
        grid.occupy_sag_exclusive(0, 0, 48, KIND_SENSE)
        grid.occupy_sag_exclusive(1, 0, 66, KIND_WRITE)
        assert grid.sag_write_free_at(0) == 0
        assert grid.sag_write_free_at(1) == 66


class TestQueries:
    def test_tile_free(self, grid):
        grid.occupy_cd(2, 0, 38, KIND_SENSE)
        grid.occupy_sag_exclusive(1, 0, 48, KIND_SENSE)
        assert grid.is_tile_free((0, 0), 5)
        assert not grid.is_tile_free((1, 0), 5)   # SAG busy
        assert not grid.is_tile_free((0, 2), 5)   # CD busy
        assert grid.is_tile_free((1, 0), 48)

    def test_active_cd_kinds_with_exclusion(self, grid):
        grid.occupy_cd(0, 0, 66, KIND_WRITE)
        grid.occupy_cd(1, 0, 38, KIND_SENSE)
        assert sorted(grid.active_cd_kinds(5)) == ["sense", "write"]
        assert grid.active_cd_kinds(5, exclude_cds=(0,)) == ["sense"]
        assert grid.active_cd_kinds(50) == ["write"]

    def test_any_write_active(self, grid):
        assert not grid.any_write_active(0)
        grid.occupy_cd(3, 0, 66, KIND_WRITE)
        assert grid.any_write_active(10)
        assert not grid.any_write_active(66)

    def test_next_release(self, grid):
        assert grid.next_release(0) is None
        grid.occupy_cd(0, 0, 38, KIND_SENSE)
        grid.occupy_sag_exclusive(2, 0, 48, KIND_SENSE)
        assert grid.next_release(0) == 38
        assert grid.next_release(38) == 48
        assert grid.next_release(48) is None


class TestAccounting:
    def test_utilisation_integrals(self, grid):
        grid.occupy_cd(0, 0, 40, KIND_SENSE)
        grid.occupy_sag_exclusive(0, 0, 40, KIND_SENSE)
        sag_util, cd_util = grid.utilisation(40)
        assert sag_util == pytest.approx(0.25)  # 1 of 4 SAGs busy
        assert cd_util == pytest.approx(0.25)

    def test_utilisation_zero_elapsed(self, grid):
        assert grid.utilisation(0) == (0.0, 0.0)

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            TileGrid(0, 4)
        with pytest.raises(ValueError):
            TileGrid(4, 0)
