"""Energy model: Section 6 pricing rules and Figure 5 semantics."""

import pytest

from repro.config import EnergyParams, baseline_nvm, fgnvm
from repro.core.energy import (
    EnergyBreakdown,
    EnergyModel,
    measure_energy,
    measure_perfect_energy,
)
from repro.errors import ConfigError
from repro.memsys.stats import StatsCollector


def stats_with(sense_bits=0, write_bits=0, cycles=0, reads=0,
               row_misses=0):
    stats = StatsCollector()
    stats.sense_bits = sense_bits
    stats.write_bits = write_bits
    stats.cycles = cycles
    stats.reads = reads
    stats.row_misses = row_misses
    return stats


class TestBreakdown:
    def test_total_is_sum(self):
        breakdown = EnergyBreakdown(100.0, 50.0, 25.0)
        assert breakdown.total_pj == pytest.approx(175.0)

    def test_relative_to(self):
        a = EnergyBreakdown(100.0, 0.0, 0.0)
        b = EnergyBreakdown(50.0, 0.0, 0.0)
        assert b.relative_to(a) == pytest.approx(0.5)

    def test_relative_to_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            EnergyBreakdown(1.0, 0, 0).relative_to(EnergyBreakdown(0, 0, 0))

    def test_as_dict(self):
        data = EnergyBreakdown(1.0, 2.0, 3.0).as_dict()
        assert data["total_pj"] == pytest.approx(6.0)


class TestPricing:
    def test_read_pricing_2pj_per_bit(self):
        model = EnergyModel(EnergyParams(), tck_ns=2.5)
        breakdown = model.measure(stats_with(sense_bits=8192))
        assert breakdown.read_pj == pytest.approx(16384.0)

    def test_write_pricing_16pj_per_bit(self):
        model = EnergyModel(EnergyParams(), tck_ns=2.5)
        breakdown = model.measure(stats_with(write_bits=512))
        assert breakdown.write_pj == pytest.approx(8192.0)

    def test_background_scales_with_time(self):
        params = EnergyParams()
        model = EnergyModel(params, tck_ns=2.5)
        short = model.measure(stats_with(cycles=1000))
        long = model.measure(stats_with(cycles=2000))
        assert long.background_pj == pytest.approx(2 * short.background_pj)
        assert short.background_pj > 0

    def test_background_epoch_must_be_positive(self):
        params = EnergyParams(background_epoch_ns=0.0)
        with pytest.raises(ConfigError):
            params.background_pj_per_ns()


class TestPerfectPricing:
    def test_perfect_prices_demand_misses_only(self):
        model = EnergyModel(EnergyParams(), tck_ns=2.5)
        stats = stats_with(sense_bits=100_000, reads=100, row_misses=10)
        perfect = model.measure_perfect(stats, cacheline_bytes=64)
        assert perfect.read_pj == pytest.approx(10 * 64 * 8 * 2.0)

    def test_perfect_keeps_write_and_background(self):
        model = EnergyModel(EnergyParams(), tck_ns=2.5)
        stats = stats_with(write_bits=512, cycles=1000, row_misses=0)
        actual = model.measure(stats)
        perfect = model.measure_perfect(stats)
        assert perfect.write_pj == actual.write_pj
        assert perfect.background_pj == actual.background_pj

    def test_actual_never_beats_perfect_reads(self):
        # Real sensing includes underfetch/write activations on top of
        # demand misses, each at least a cache line wide.
        model = EnergyModel(EnergyParams(), tck_ns=2.5)
        stats = stats_with(sense_bits=60_000, reads=100, row_misses=50)
        assert (
            model.measure(stats).read_pj
            >= model.measure_perfect(stats).read_pj
        )


class TestConfigWrappers:
    def test_measure_energy_uses_config_clock(self):
        cfg = baseline_nvm()
        stats = stats_with(cycles=4000)  # 10 us at 2.5ns
        breakdown = measure_energy(cfg, stats)
        expected = 10_000.0 * cfg.energy.background_pj_per_ns()
        assert breakdown.background_pj == pytest.approx(expected)

    def test_perfect_wrapper_uses_cacheline(self):
        cfg = fgnvm(8, 32)
        stats = stats_with(row_misses=4)
        breakdown = measure_perfect_energy(cfg, stats)
        assert breakdown.read_pj == pytest.approx(4 * 64 * 8 * 2.0)
