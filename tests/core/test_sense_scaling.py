"""Sense-time scaling model behind the single-tCAS assumption."""

import pytest

from repro.core.sense_scaling import (
    REFERENCE_ROWS,
    REFERENCE_TCAS_NS,
    is_sublinear,
    max_spread_fraction,
    sense_time_ns,
    tcas_for_tile_heights,
)


class TestCalibration:
    def test_reference_point_is_exact(self):
        assert sense_time_ns(REFERENCE_ROWS) == pytest.approx(
            REFERENCE_TCAS_NS
        )

    def test_monotone_in_rows(self):
        times = [sense_time_ns(r) for r in (256, 512, 1024, 2048, 4096)]
        assert times == sorted(times)

    def test_rejects_bad_rows(self):
        with pytest.raises(ValueError):
            sense_time_ns(0)


class TestSublinearity:
    @pytest.mark.parametrize("a,b", [(512, 1024), (1024, 4096), (512, 4096)])
    def test_doubling_less_than_doubles(self, a, b):
        assert is_sublinear(a, b)

    def test_requires_increasing_pair(self):
        with pytest.raises(ValueError):
            is_sublinear(2048, 1024)


class TestTileRange:
    def test_realistic_range_stays_near_reference(self):
        # The paper simulates one tCAS across 512..4K-row tiles; the
        # model keeps the whole range within ~25% of the reference.
        assert max_spread_fraction() < 0.25

    def test_table_covers_requested_heights(self):
        table = tcas_for_tile_heights((512, 2048))
        assert set(table) == {512, 2048}
        assert table[2048] == pytest.approx(REFERENCE_TCAS_NS)

    def test_rejects_non_power_heights(self):
        with pytest.raises(ValueError):
            tcas_for_tile_heights((1000,))
