"""Pure access-mode legality rules (paper Section 4)."""

import pytest

from repro.core.access_modes import (
    accessible_fraction_during_write,
    available_tiles_during,
    classify_read,
    max_parallel_accesses,
    multi_activation_legal,
    partial_activation_sensed_bytes,
    tiles_conflict,
)


class TestTileConflicts:
    def test_disjoint_tiles_do_not_conflict(self):
        assert not tiles_conflict((0, 0), (1, 1))
        assert not tiles_conflict((3, 7), (2, 5))

    def test_shared_sag_conflicts(self):
        assert tiles_conflict((2, 0), (2, 5))

    def test_shared_cd_conflicts(self):
        assert tiles_conflict((0, 3), (7, 3))

    def test_same_tile_conflicts(self):
        assert tiles_conflict((1, 1), (1, 1))


class TestMultiActivationLegality:
    def test_permutation_sets_are_legal(self):
        assert multi_activation_legal([(0, 0), (1, 1), (2, 2)])
        assert multi_activation_legal([(0, 3), (1, 0), (2, 2)])

    def test_repeated_sag_illegal(self):
        assert not multi_activation_legal([(0, 0), (0, 1)])

    def test_repeated_cd_illegal(self):
        assert not multi_activation_legal([(0, 0), (1, 0)])

    def test_empty_and_singleton_are_legal(self):
        assert multi_activation_legal([])
        assert multi_activation_legal([(5, 5)])

    def test_consistent_with_pairwise_conflicts(self):
        tiles = [(0, 1), (1, 2), (2, 0)]
        pairwise_ok = all(
            not tiles_conflict(a, b)
            for i, a in enumerate(tiles)
            for b in tiles[i + 1:]
        )
        assert multi_activation_legal(tiles) == pairwise_ok


class TestCapacityFormulas:
    def test_max_parallel_is_short_axis(self):
        assert max_parallel_accesses(8, 2) == 2
        assert max_parallel_accesses(4, 4) == 4
        assert max_parallel_accesses(32, 32) == 32

    def test_paper_availability_example(self):
        # "for a 32x32 tile bank, the remaining 31x31 tiles are still
        # available ... approximately 93.8% of data" (Section 4).
        assert accessible_fraction_during_write(32, 32) == pytest.approx(
            0.938, abs=5e-4
        )
        assert len(available_tiles_during([(0, 0)], 32, 32)) == 961

    def test_available_tiles_respect_both_axes(self):
        avail = available_tiles_during([(0, 0), (1, 1)], 4, 4)
        assert (2, 2) in avail and (3, 3) in avail
        assert all(sag not in (0, 1) and cd not in (0, 1)
                   for sag, cd in avail)
        assert len(avail) == 4

    def test_small_bank_write_blocks_heavily(self):
        # The 2x2 example from Figure 3(c): one write leaves one tile.
        assert accessible_fraction_during_write(2, 2) == pytest.approx(0.25)


class TestSensedBytes:
    def test_figure5_accounting(self):
        # 1KB baseline row: 512B @2 CDs, 128B @8, 32B @32 (Section 6).
        assert partial_activation_sensed_bytes(1024, 1) == 1024
        assert partial_activation_sensed_bytes(1024, 2) == 512
        assert partial_activation_sensed_bytes(1024, 8) == 128
        assert partial_activation_sensed_bytes(1024, 32) == 32

    def test_rejects_non_dividing_cds(self):
        with pytest.raises(ValueError):
            partial_activation_sensed_bytes(1024, 3)
        with pytest.raises(ValueError):
            partial_activation_sensed_bytes(1024, 0)


class TestClassifyRead:
    def test_buffered_hit(self):
        assert classify_read(5, (0, 5), sag=0, row=5) == "row_hit"

    def test_open_row_not_buffered_is_underfetch(self):
        assert classify_read(5, None, sag=0, row=5) == "underfetch"
        assert classify_read(5, (0, 9), sag=0, row=5) == "underfetch"

    def test_closed_row_is_miss(self):
        assert classify_read(None, None, sag=0, row=5) == "row_miss"
        assert classify_read(4, (0, 4), sag=0, row=5) == "row_miss"

    def test_tag_must_match_sag_too(self):
        assert classify_read(5, (1, 5), sag=0, row=5) == "underfetch"
