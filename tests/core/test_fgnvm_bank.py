"""FgNVM bank state machine: the three access modes in cycle detail.

Timing constants under test (Table 2 at tCK=2.5ns): tRCD=10, tCAS=38,
tCAS_hit=6, tCCD=4, tBURST=4, write occupancy tCWD+tWP+tWR=66 cycles.
"""

import pytest

from repro.config import fgnvm
from repro.config.params import TimingParams
from repro.core.fgnvm_bank import FgNvmBank, make_fgnvm_bank
from repro.errors import ProtocolError
from repro.memsys.address import AddressMapper
from repro.memsys.request import (
    SERVICE_ROW_HIT,
    SERVICE_ROW_MISS,
    SERVICE_UNDERFETCH,
    SERVICE_WRITE,
    SERVICE_WRITE_MISS,
    MemRequest,
    OpType,
)
from repro.memsys.stats import StatsCollector

TRCD, TCAS, THIT, TCCD, TBURST = 10, 38, 6, 4, 4
MISS_BUSY = TRCD + TCAS  # 48
WRITE_BUSY = 3 + 60 + 3  # 66


@pytest.fixture
def setup():
    """A 4x4 FgNVM bank plus its mapper and stats."""
    cfg = fgnvm(4, 4)
    cfg.org.rows_per_bank = 256
    stats = StatsCollector()
    bank = make_fgnvm_bank(0, cfg.org, cfg.timing.cycles(), stats)
    mapper = AddressMapper(cfg.org)
    return bank, mapper, stats


def read_at(mapper, sag=0, cd=0, row_in_sag=0, col_in_cd=0):
    """A read targeting explicit (SAG, CD) coordinates."""
    org_rows_per_sag = 256 // 4
    row = sag * org_rows_per_sag + row_in_sag
    col = cd * 4 + col_in_cd
    req = MemRequest(OpType.READ, mapper.encode(row=row, col=col))
    req.decoded = mapper.decode(req.address)
    assert req.decoded.sag == sag and req.decoded.cd == cd
    return req


def write_at(mapper, sag=0, cd=0, row_in_sag=0, col_in_cd=0):
    req = read_at(mapper, sag, cd, row_in_sag, col_in_cd)
    wreq = MemRequest(OpType.WRITE, req.address)
    wreq.decoded = req.decoded
    return wreq


class TestClassification:
    def test_fresh_bank_misses(self, setup):
        bank, mapper, _ = setup
        assert bank.classify(read_at(mapper)) == SERVICE_ROW_MISS
        assert bank.classify(write_at(mapper)) == SERVICE_WRITE_MISS

    def test_miss_then_hit_same_line(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper), 0)
        assert bank.classify(read_at(mapper)) == SERVICE_ROW_HIT
        assert bank.is_row_hit(read_at(mapper))

    def test_same_cd_other_column_is_hit(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, col_in_cd=0), 0)
        # The whole CD slice of the row is latched by one sense.
        assert bank.classify(read_at(mapper, col_in_cd=3)) == SERVICE_ROW_HIT

    def test_same_row_other_cd_is_underfetch(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, cd=0), 0)
        assert bank.classify(read_at(mapper, cd=1)) == SERVICE_UNDERFETCH

    def test_other_row_same_sag_is_miss(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, row_in_sag=0), 0)
        assert bank.classify(read_at(mapper, row_in_sag=1)) == SERVICE_ROW_MISS

    def test_write_to_open_row_is_write_hit(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper), 0)
        assert bank.classify(write_at(mapper)) == SERVICE_WRITE
        assert bank.is_row_hit(write_at(mapper))


class TestReadTiming:
    def test_miss_latency(self, setup):
        bank, mapper, _ = setup
        result = bank.issue(read_at(mapper), 0)
        assert result.kind == SERVICE_ROW_MISS
        assert result.bus_desired_start == MISS_BUSY
        assert result.data_ready == MISS_BUSY + TBURST
        assert result.occupies_until == MISS_BUSY

    def test_hit_latency(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper), 0)
        hit = read_at(mapper, col_in_cd=1)
        start = bank.earliest_start(hit, MISS_BUSY)
        assert start == MISS_BUSY
        result = bank.issue(hit, MISS_BUSY)
        assert result.kind == SERVICE_ROW_HIT
        assert result.data_ready == MISS_BUSY + THIT + TBURST

    def test_underfetch_latency(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, cd=0), 0)
        uf = read_at(mapper, cd=1)
        start = bank.earliest_start(uf, TRCD)
        result = bank.issue(uf, start)
        assert result.kind == SERVICE_UNDERFETCH
        # Sense only (no tRCD): data leaves tCAS + tBURST after issue.
        assert result.bus_desired_start == start + TCAS
        assert result.data_ready == start + TCAS + TBURST

    def test_column_gate_spaces_commands(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, sag=0, cd=0), 0)
        other = read_at(mapper, sag=1, cd=1)
        assert bank.earliest_start(other, 0) == TCCD


class TestMultiActivation:
    def test_disjoint_tiles_overlap(self, setup):
        bank, mapper, stats = setup
        bank.issue(read_at(mapper, sag=0, cd=0), 0)
        second = read_at(mapper, sag=1, cd=1)
        start = bank.earliest_start(second, TCCD)
        assert start == TCCD  # only the column gate, no tile conflict
        bank.issue(second, start)
        assert stats.multi_activation_senses == 1

    def test_same_cd_serialises(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, sag=0, cd=0), 0)
        blocked = read_at(mapper, sag=1, cd=0)
        assert bank.earliest_start(blocked, TCCD) == MISS_BUSY

    def test_same_sag_other_row_serialises(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, sag=0, cd=0, row_in_sag=0), 0)
        blocked = read_at(mapper, sag=0, cd=1, row_in_sag=1)
        assert bank.earliest_start(blocked, TCCD) == MISS_BUSY

    def test_same_sag_same_row_overlaps_after_wordline_up(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, sag=0, cd=0), 0)
        friend = read_at(mapper, sag=0, cd=1)
        # Wordline is stable after tRCD; the second CD senses in parallel.
        assert bank.earliest_start(friend, TCCD) == TRCD

    def test_max_parallelism_bounded_by_grid(self, setup):
        bank, mapper, stats = setup
        for i in range(4):
            req = read_at(mapper, sag=i, cd=i)
            bank.issue(req, bank.earliest_start(req, i * TCCD))
        assert stats.senses == 4
        assert stats.multi_activation_senses == 3


class TestBackgroundedWrites:
    def test_write_occupancy(self, setup):
        bank, mapper, _ = setup
        result = bank.issue(write_at(mapper), 0)
        assert result.kind == SERVICE_WRITE_MISS
        assert result.occupies_until == TRCD + WRITE_BUSY

    def test_write_hit_skips_activation(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper), 0)
        write = write_at(mapper)
        result = bank.issue(write, MISS_BUSY)
        assert result.kind == SERVICE_WRITE
        assert result.occupies_until == MISS_BUSY + WRITE_BUSY

    def test_write_blocks_its_sag_and_cd(self, setup):
        bank, mapper, _ = setup
        bank.issue(write_at(mapper, sag=0, cd=0), 0)
        until = TRCD + WRITE_BUSY
        same_sag = read_at(mapper, sag=0, cd=1)
        same_cd = read_at(mapper, sag=1, cd=0)
        assert bank.earliest_start(same_sag, TCCD) == until
        assert bank.earliest_start(same_cd, TCCD) == until

    def test_read_during_write_elsewhere(self, setup):
        bank, mapper, stats = setup
        bank.issue(write_at(mapper, sag=0, cd=0), 0)
        reader = read_at(mapper, sag=1, cd=1)
        assert bank.earliest_start(reader, TCCD) == TCCD
        bank.issue(reader, TCCD)
        assert stats.reads_under_write == 1

    def test_buffered_hit_during_write_other_cd(self, setup):
        bank, mapper, stats = setup
        bank.issue(read_at(mapper, sag=1, cd=1), 0)
        bank.issue(write_at(mapper, sag=0, cd=0), MISS_BUSY)
        hit = read_at(mapper, sag=1, cd=1, col_in_cd=2)
        start = bank.earliest_start(hit, MISS_BUSY + TCCD)
        assert start == MISS_BUSY + TCCD
        bank.issue(hit, start)
        assert stats.reads_under_write == 1

    def test_write_throttle_query(self, setup):
        bank, mapper, _ = setup
        assert bank.active_writes(0) == 0
        bank.issue(write_at(mapper, sag=0, cd=0), 0)
        assert bank.active_writes(1) == 1
        assert bank.active_writes(TRCD + WRITE_BUSY) == 0


class TestProtocolEnforcement:
    def test_premature_issue_raises(self, setup):
        bank, mapper, _ = setup
        bank.issue(read_at(mapper, sag=0, cd=0), 0)
        conflicting = read_at(mapper, sag=1, cd=0)
        with pytest.raises(ProtocolError):
            bank.issue(conflicting, TCCD)

    def test_next_release_reports_busy_resources(self, setup):
        bank, mapper, _ = setup
        assert bank.next_release(0) is None
        bank.issue(read_at(mapper), 0)
        assert bank.next_release(0) == TCCD  # column gate frees first
        assert bank.next_release(TCCD) == MISS_BUSY


class TestEnergyAccounting:
    def test_sense_bits_per_cd_slice(self, setup):
        bank, mapper, stats = setup
        bank.issue(read_at(mapper), 0)
        # 1KB row over 4 CDs -> 256B = 2048 bits per sense.
        assert stats.sense_bits == 2048

    def test_hit_senses_nothing(self, setup):
        bank, mapper, stats = setup
        bank.issue(read_at(mapper), 0)
        bank.issue(read_at(mapper, col_in_cd=1), MISS_BUSY)
        assert stats.senses == 1

    def test_fgnvm_write_senses_one_slice(self, setup):
        bank, mapper, stats = setup
        bank.issue(write_at(mapper), 0)
        assert stats.write_bits == 512
        # Partial activation for the write senses only its CD slice.
        assert stats.sense_bits == 2048


class TestCdSpan:
    def make_span_bank(self):
        """2 SAGs x 16 CDs over an 8-column row: every line spans 2 CDs."""
        cfg = fgnvm(2, 8)
        cfg.org.rows_per_bank = 64
        cfg.org.row_size_bytes = 512  # 8 cache lines per row
        cfg.org.column_divisions = 16  # 32B per CD
        stats = StatsCollector()
        bank = make_fgnvm_bank(0, cfg.org, cfg.timing.cycles(), stats)
        mapper = AddressMapper(cfg.org)
        return bank, mapper, stats

    def test_span_is_two(self):
        bank, _, _ = self.make_span_bank()
        assert bank.cd_span == 2

    def test_access_occupies_both_cds(self):
        bank, mapper, _ = self.make_span_bank()
        req = MemRequest(OpType.READ, mapper.encode(col=0))
        req.decoded = mapper.decode(req.address)
        bank.issue(req, 0)
        assert bank.grid.cd_free_at(0) == MISS_BUSY
        assert bank.grid.cd_free_at(1) == MISS_BUSY
        assert bank.grid.cd_free_at(2) == 0

    def test_sense_bits_cover_whole_line(self):
        bank, mapper, stats = self.make_span_bank()
        req = MemRequest(OpType.READ, mapper.encode(col=0))
        req.decoded = mapper.decode(req.address)
        bank.issue(req, 0)
        # 512B row / 16 CDs = 32B (256-bit) slices; a 64B line spans two,
        # so exactly one cache line's worth of bits is sensed (the
        # paper's "8x32 reads no more than one cache line at a time").
        assert bank.sense_bits == 256
        assert stats.sense_bits == 512


class TestClosePage:
    def make_closed_bank(self):
        cfg = fgnvm(4, 4)
        cfg.org.rows_per_bank = 256
        stats = StatsCollector()
        bank = make_fgnvm_bank(0, cfg.org, cfg.timing.cycles(), stats)
        bank.close_page = True
        return bank, AddressMapper(cfg.org), stats

    def test_every_access_misses(self):
        bank, mapper, stats = self.make_closed_bank()
        first = read_at(mapper)
        bank.issue(first, 0)
        again = read_at(mapper)
        # Same line immediately afterwards: the page closed behind it.
        assert bank.classify(again) == SERVICE_ROW_MISS
        assert bank.open_rows() == [None] * 4

    def test_no_hits_accumulate(self):
        bank, mapper, stats = self.make_closed_bank()
        now = 0
        for _ in range(4):
            req = read_at(mapper)
            now = bank.earliest_start(req, now)
            bank.issue(req, now)
        assert stats.row_hits == 0
        assert stats.row_misses == 4

    def test_writes_also_close(self):
        bank, mapper, _ = self.make_closed_bank()
        write = write_at(mapper)
        bank.issue(write, 0)
        assert bank.open_rows() == [None] * 4
        assert bank.classify(read_at(mapper)) == SERVICE_ROW_MISS
