#!/usr/bin/env python3
"""Table 1 on demand, plus the area scaling behind it.

Prints the calibrated 45 nm area model against the paper's published
numbers, then sweeps the grid to show how each overhead component
scales with the subdivision (row latches with SAGs, CSL registers with
CDs x log2(SAGs), enable wiring with SAGs x CDs).

Run:  python examples/area_report.py
"""

from repro import sim
from repro.analysis.table1 import render_table1, run_table1
from repro.core.area import AreaModel
from repro.units import um2_to_mm2


def main() -> None:
    print(render_table1(run_table1()))

    model = AreaModel()
    rows = []
    for sags, cds in ((4, 4), (8, 2), (8, 8), (16, 16), (32, 32)):
        report = model.report(sags, cds)
        rows.append([
            f"{sags}x{cds}",
            report.row_latches_um2,
            report.csl_latches_um2,
            um2_to_mm2(report.lysel_worst_um2),
            um2_to_mm2(report.total_worst_um2),
            report.percent_of_bank(worst=True),
        ])
    print("\nScaling across subdivisions (worst-case routing):")
    print(sim.ascii_table(
        ["grid", "row latch (um^2)", "CSL latch (um^2)",
         "LY-SEL (mm^2)", "total (mm^2)", "% of bank"],
        rows,
    ))

    print("\nRow-decoder splitting (the Table 1 'N/A' rows):")
    for sags in (8, 32):
        delta = model.split_decoder_overhead(65536, sags)
        print(
            f"  {sags} per-SAG decoders vs one monolithic: "
            f"{delta:+.1%} transistors"
        )


if __name__ == "__main__":
    main()
