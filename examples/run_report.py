#!/usr/bin/env python3
"""Deep-dive on one run: histograms, utilisation, phases.

Runs one workload on FgNVM with epoch recording enabled and prints the
detailed run report — read-latency distribution, per-bank tile
utilisation, data-bus pressure — plus sparkline time series showing how
IPC, traffic and queue pressure evolve over the run.

Run:  python examples/run_report.py [benchmark] [--requests N]
"""

import argparse

from repro import config
from repro.sim.epochs import epoch_table, phase_summary
from repro.sim.report import full_report
from repro.sim.simulator import Simulator
from repro.workloads import benchmark_names, generate_trace, get_profile

EPOCH_CYCLES = 2000


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("benchmark", nargs="?", default="milc",
                        help=f"one of: {', '.join(benchmark_names())}")
    parser.add_argument("--requests", type=int, default=4000)
    args = parser.parse_args()

    cfg = config.fgnvm(8, 2)
    cfg.sim.epoch_cycles = EPOCH_CYCLES
    trace = generate_trace(get_profile(args.benchmark), args.requests)

    print(f"simulating {args.benchmark} on {cfg.name} ...")
    simulator = Simulator(cfg, trace)
    result = simulator.run()

    print()
    print(full_report(simulator))

    ratio = cfg.cpu.cpu_cycles_per_mem_cycle(cfg.timing.tck_ns)
    print(f"\nphase behaviour ({EPOCH_CYCLES}-cycle epochs, one glyph "
          "per epoch, intensity = magnitude):")
    for name, line in phase_summary(
        result.epochs, EPOCH_CYCLES, ratio
    ).items():
        print(f"  {name:8s} |{line}|")

    print("\nfirst epochs in numbers:")
    print(epoch_table(result.epochs[:8], EPOCH_CYCLES, ratio))


if __name__ == "__main__":
    main()
