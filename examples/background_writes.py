#!/usr/bin/env python3
"""Backgrounded Writes, isolated: read latency under write pressure.

Builds a controlled workload — eight interleaved read streams spread
across the SAGs of one bank, with a sweepable write fraction — and
shows how baseline read latency collapses under PCM's 150 ns write
pulses while FgNVM keeps serving reads from unaffected tiles
(Section 4, Figure 3(c)).

Run:  python examples/background_writes.py
"""

from repro import config, sim
from repro.workloads import multi_stream_kernel

REQUESTS = 2000
#: Stream spacing: one SAG stride (128 rows x 8KB row span) plus a
#: 2-line column offset so each stream starts in its own (SAG, CD).
SPACING = (1 << 20) + 128


def run(write_fraction):
    trace = multi_stream_kernel(
        REQUESTS, streams=8, gap=3, write_fraction=write_fraction,
        stream_spacing_bytes=SPACING, seed=11,
    )
    baseline_cfg = config.baseline_nvm()
    baseline_cfg.org.rows_per_bank = 1024
    fgnvm_cfg = config.fgnvm(8, 8)
    fgnvm_cfg.org.rows_per_bank = 1024
    base = sim.simulate(baseline_cfg, trace)
    fg = sim.simulate(fgnvm_cfg, trace)
    return base, fg


def main() -> None:
    rows = []
    for write_fraction in (0.0, 0.2, 0.4):
        base, fg = run(write_fraction)
        rows.append([
            f"{write_fraction:.0%}",
            base.stats.avg_read_latency,
            fg.stats.avg_read_latency,
            fg.ipc / base.ipc,
            fg.stats.reads_under_write,
        ])
        print(f"write fraction {write_fraction:.0%}: done")

    print()
    print(sim.ascii_table(
        ["writes", "baseline read lat (cy)", "fgnvm read lat (cy)",
         "fgnvm speedup", "reads under write"],
        rows,
    ))
    print(
        "\nThe speedup column grows with write pressure: FgNVM reads "
        "proceed in tiles the write does not occupy, while every "
        "baseline read waits out the 150 ns write pulse."
    )


if __name__ == "__main__":
    main()
