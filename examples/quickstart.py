#!/usr/bin/env python3
"""Quickstart: simulate one workload on the baseline and on FgNVM.

Builds the paper's Table-2 memory system twice — once as the baseline
PCM prototype and once as an 8x2 FgNVM — replays the same synthetic
`mcf`-like trace on both, and prints the speedup, latency and energy
comparison.

Run:  python examples/quickstart.py
"""

from repro import config, sim
from repro.workloads import generate_trace, get_profile

REQUESTS = 3000


def main() -> None:
    profile = get_profile("mcf")
    trace = generate_trace(profile, REQUESTS)
    print(
        f"workload: {profile.name} (MPKI {profile.mpki}, "
        f"{profile.write_fraction:.0%} writes), {REQUESTS} accesses"
    )

    baseline_cfg = config.baseline_nvm()
    fgnvm_cfg = config.fgnvm(8, 2)

    print("\nsimulating baseline ...")
    baseline = sim.simulate(baseline_cfg, trace)
    print("simulating FgNVM 8x2 ...")
    fg = sim.simulate(fgnvm_cfg, trace)

    rows = []
    for label, result in (("baseline", baseline), ("fgnvm-8x2", fg)):
        stats = result.stats
        rows.append([
            label,
            result.ipc,
            stats.row_hit_rate,
            stats.avg_read_latency,
            result.energy.total_pj / 1e6,  # uJ
        ])
    print()
    print(sim.ascii_table(
        ["system", "ipc", "row-hit rate", "avg read lat (cy)",
         "energy (uJ)"],
        rows,
    ))

    print(f"\nspeedup over baseline : {fg.ipc / baseline.ipc:.3f}x")
    print(
        "energy vs baseline    : "
        f"{fg.energy.total_pj / baseline.energy.total_pj:.3f}x"
    )
    print(
        "FgNVM parallel events : "
        f"{fg.stats.multi_activation_senses} multi-activations, "
        f"{fg.stats.reads_under_write} reads under a write"
    )


if __name__ == "__main__":
    main()
