#!/usr/bin/env python3
"""Figure 3 live: watch the tiles of an FgNVM bank over time.

First renders the paper's three textbook scenarios on a 2x2-tile bank
(Partial-Activation, Multi-Activation, Backgrounded Write) as observed
occupancy timelines, then records a real workload burst on an 4x4 bank
and shows its tile Gantt chart — multi-activations and backgrounded
writes appearing organically under FRFCFS.

Run:  python examples/access_scheme_timelines.py
"""

from repro import config
from repro.analysis.figure3 import render_figure3, run_figure3
from repro.sim.simulator import Simulator
from repro.sim.timeline import overlap_summary, render_timeline
from repro.workloads import generate_trace, get_profile


def textbook_panels() -> None:
    print(render_figure3(run_figure3()))


def real_workload_burst() -> None:
    cfg = config.fgnvm(4, 4)
    trace = generate_trace(get_profile("milc"), 600)
    simulator = Simulator(cfg, trace)
    # Switch on occupancy logging for bank 0 before running.
    log = []
    simulator.controller.controllers[0].banks[0].event_log = log
    simulator.run()

    window = [e for e in log if e[0] < 4000]
    print(f"\nmilc on {cfg.name} — bank 0, first 4000 cycles "
          f"({len(window)} operations):")
    print(render_timeline(window, width=72, start=0, end=4000))
    summary = overlap_summary(window)
    print(
        f"\nparallelism in this window: "
        f"{summary['multi_activation']} cycles of overlapping senses, "
        f"{summary['read_under_write']} cycles of reads under a write, "
        f"{summary['busy']} busy cycles total"
    )


def main() -> None:
    textbook_panels()
    real_workload_burst()


if __name__ == "__main__":
    main()
