#!/usr/bin/env python3
"""Figure 4 on demand: per-benchmark speedups for chosen workloads.

Runs the paper's four systems (baseline, FgNVM 8x2, 128 banks,
FgNVM+Multi-Issue) on a selection of SPEC2006-like profiles and prints
the speedup table plus an ASCII bar chart of the geometric means.

Run:  python examples/spec_speedup.py [benchmark ...] [--requests N]
"""

import argparse

from repro import sim
from repro.analysis.figure4 import render_figure4, run_figure4
from repro.workloads import benchmark_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks", nargs="*", default=["mcf", "lbm", "milc", "omnetpp"],
        help="benchmark profiles to run (default: a fast subset; "
             f"known: {', '.join(benchmark_names())})",
    )
    parser.add_argument(
        "--requests", type=int, default=2500,
        help="trace length per simulation (default 2500)",
    )
    args = parser.parse_args()

    print(
        f"running {len(args.benchmarks)} benchmarks x 4 architectures "
        f"at {args.requests} requests each ..."
    )
    result = run_figure4(args.benchmarks, args.requests)
    print()
    print(render_figure4(result))

    print("\ngeometric-mean speedups:")
    print(sim.bar_chart(result.series_summary(), width=40, unit="x"))
    print("\npaper reference: combined average improvement 56.5%")


if __name__ == "__main__":
    main()
