#!/usr/bin/env python3
"""Multi-programmed interference: 4 cores, one NVM memory system.

Runs a mix of four SPEC-like workloads against a shared memory system
on the baseline, FgNVM and 128-bank designs, then prints weighted
speedup (per-core shared/alone IPC, same architecture) and aggregate
throughput — showing that tile-level parallelism pays off *more* under
contention than it does single-core.

Run:  python examples/multicore_interference.py [--requests N]
"""

import argparse

from repro import config, sim
from repro.workloads import generate_trace, get_profile

MIX = ("mcf", "lbm", "milc", "omnetpp")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=1500,
                        help="trace length per core (default 1500)")
    args = parser.parse_args()

    traces = [
        generate_trace(get_profile(name), args.requests) for name in MIX
    ]
    print(f"mix: {', '.join(MIX)} ({args.requests} requests/core)\n")

    rows = {}
    for label, cfg in (
        ("baseline", config.baseline_nvm()),
        ("fgnvm-8x2", config.fgnvm(8, 2)),
        ("128-banks", config.many_banks(8, 2)),
    ):
        print(f"running {label} (shared + 4 solo reference runs) ...")
        rows[label] = sim.weighted_speedup_study(cfg, traces, labels=MIX)

    print()
    print(sim.series_table(rows, row_label="architecture"))
    base = rows["baseline"]["throughput_ipc"]
    fg = rows["fgnvm-8x2"]["throughput_ipc"]
    print(
        f"\nFgNVM throughput gain over baseline under contention: "
        f"{fg / base:.2f}x (single-core Figure 4 average is smaller — "
        "a 4-core mix supplies more memory-level parallelism than one "
        "ROB can)"
    )


if __name__ == "__main__":
    main()
