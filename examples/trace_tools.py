#!/usr/bin/env python3
"""Trace tooling: generate, cache-filter, export and replay traces.

Shows the full workload pipeline a user would run with their own
address streams:

1. generate a raw access stream (a synthetic kernel),
2. filter it through the 2 MiB last-level cache model to get the
   memory-level miss + writeback stream,
3. write it to disk in both the native and NVMain trace formats,
4. read it back and simulate it on FgNVM.

Run:  python examples/trace_tools.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import config, sim
from repro.cpu import LastLevelCache
from repro.workloads import (
    random_kernel,
    read_trace,
    trace_mpki,
    write_nvmain_trace,
    write_trace,
)


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="repro-traces-")
    )
    out_dir.mkdir(parents=True, exist_ok=True)

    print("generating raw access stream (uniform 64 MiB, 15% stores)...")
    raw = random_kernel(
        30_000, footprint_bytes=64 << 20, gap=30,
        write_fraction=0.15, seed=20,
    )

    print("filtering through a 2 MiB, 16-way LLC ...")
    cache = LastLevelCache(size_bytes=2 << 20, ways=16)
    filtered = list(cache.filter_trace(raw))
    print(
        f"  {cache.stats.accesses} accesses -> {cache.stats.misses} "
        f"misses + {cache.stats.writebacks} writebacks "
        f"(miss rate {cache.stats.miss_rate:.1%}, "
        f"memory-level MPKI {trace_mpki(filtered):.1f})"
    )

    native = out_dir / "filtered.trace"
    nvmain = out_dir / "filtered.nvmain"
    write_trace(filtered, native)
    write_nvmain_trace(filtered, nvmain)
    print(f"wrote {native} and {nvmain}")

    print("replaying the on-disk trace on FgNVM 8x2 ...")
    reloaded = read_trace(native)
    result = sim.simulate(config.fgnvm(8, 2), reloaded)
    summary = result.summary()
    print()
    print(sim.dict_table({
        "requests": summary["reads"] + summary["writes"],
        "ipc": summary["ipc"],
        "row hit rate": summary["row_hit_rate"],
        "avg read latency (cy)": summary["avg_read_latency_cycles"],
        "energy (uJ)": summary["energy_total_pj"] / 1e6,
    }))


if __name__ == "__main__":
    main()
