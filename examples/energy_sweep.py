#!/usr/bin/env python3
"""Figure 5 on demand: the column-division energy sweep.

Simulates a workload selection on the 8x2 / 8x8 / 8x32 FgNVM
configurations, prices each run with the paper's energy rules
(2 pJ/bit sense, 16 pJ/bit write, 0.08 pJ/bit background) and prints
energies normalised to the baseline, including the "Perfect" pricing.

Run:  python examples/energy_sweep.py [benchmark ...] [--requests N]
"""

import argparse

from repro import sim
from repro.analysis.figure5 import render_figure5, run_figure5
from repro.workloads import benchmark_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "benchmarks", nargs="*",
        default=["mcf", "lbm", "libquantum", "sphinx3"],
        help="benchmark profiles to run "
             f"(known: {', '.join(benchmark_names())})",
    )
    parser.add_argument("--requests", type=int, default=2500)
    args = parser.parse_args()

    print(
        f"running {len(args.benchmarks)} benchmarks x 4 configurations "
        f"at {args.requests} requests each ..."
    )
    result = run_figure5(args.benchmarks, args.requests)
    print()
    print(render_figure5(result))

    print("\naverage relative energy (lower is better):")
    print(sim.bar_chart(result.series_summary(), width=40))
    print("\npaper reference: reductions of 37% (8x2), 65% (8x8), "
          "73% (8x32) on average")


if __name__ == "__main__":
    main()
